// End-to-end regeneration of Table 2's YES cells: each problem solved in its
// weakest sufficient model (and, via the Lemma 4 adapters, in every model to
// its right), on the paper's workload families, across the adversary battery.
#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/mis.h"
#include "src/protocols/two_cliques.h"
#include "src/wb/adapters.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

TEST(Table2, BuildKDegenerateYesInAllFourModels) {
  const Graph g = random_k_degenerate(15, 3, 20, 8);
  const BuildDegenerateProtocol native(3);
  const SimAsyncInSimSync<BuildOutput> at_simsync(native);
  const Rebadge<BuildOutput> at_async(native, ModelClass::kAsync);
  const AsyncInSync<BuildOutput> at_sync(at_async);
  const ProtocolWithOutput<BuildOutput>* cells[] = {&native, &at_simsync,
                                                    &at_async, &at_sync};
  for (const auto* p : cells) {
    for (auto& adv : standard_adversaries(g, 5)) {
      const ExecutionResult r = run_protocol(g, *p, *adv);
      ASSERT_TRUE(r.ok()) << p->name() << "/" << adv->name();
      EXPECT_EQ(*p->output(r.board, 15), g) << p->name();
    }
  }
}

TEST(Table2, RootedMisYesFromSimSyncUp) {
  const Graph g = connected_gnp(14, 1, 3, 21);
  const NodeId root = 7;
  const RootedMisProtocol native(root);
  const SimSyncInAsync<MisOutput> at_async(native);
  const AsyncInSync<MisOutput> at_sync(at_async);
  const ProtocolWithOutput<MisOutput>* cells[] = {&native, &at_async, &at_sync};
  for (const auto* p : cells) {
    for (auto& adv : standard_adversaries(g, 9)) {
      const ExecutionResult r = run_protocol(g, *p, *adv);
      ASSERT_TRUE(r.ok()) << p->name() << "/" << adv->name();
      EXPECT_TRUE(is_rooted_mis(g, p->output(r.board, 14), root)) << p->name();
    }
  }
}

TEST(Table2, EobBfsYesFromAsyncUp) {
  const Graph g = connected_even_odd_bipartite(13, 1, 3, 33);
  const EobBfsProtocol native;
  const AsyncInSync<BfsProtocolOutput> at_sync(native);
  const BfsForest ref = bfs_forest(g);
  const ProtocolWithOutput<BfsProtocolOutput>* cells[] = {&native, &at_sync};
  for (const auto* p : cells) {
    for (auto& adv : standard_adversaries(g, 2)) {
      const ExecutionResult r = run_protocol(g, *p, *adv);
      ASSERT_TRUE(r.ok()) << p->name() << "/" << adv->name();
      const BfsProtocolOutput out = p->output(r.board, 13);
      EXPECT_TRUE(out.valid) << p->name();
      EXPECT_EQ(out.layer, ref.layer) << p->name();
    }
  }
}

TEST(Table2, BfsYesInSync) {
  const Graph g = connected_gnp(16, 1, 4, 44);  // arbitrary, non-bipartite ok
  const SyncBfsProtocol p;
  const BfsForest ref = bfs_forest(g);
  for (auto& adv : standard_adversaries(g, 3)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    const BfsProtocolOutput out = p.output(r.board, 16);
    EXPECT_EQ(out.layer, ref.layer) << adv->name();
    EXPECT_TRUE(is_valid_bfs_forest(g, out.layer, out.parent)) << adv->name();
  }
}

TEST(Table2, TwoCliquesYesInSimSync) {
  const TwoCliquesProtocol p;
  const Graph yes = two_cliques(7);
  for (auto& adv : standard_adversaries(yes, 1)) {
    const ExecutionResult r = run_protocol(yes, p, *adv);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(p.output(r.board, 14).yes) << adv->name();
  }
}

TEST(Table2, MessageBudgetsAreLogarithmicWhereClaimed) {
  // Every yes-cell protocol above declares an O(log n)-size bound; check the
  // declared budgets at n = 2^20 stay within small multiples of 20 bits.
  const std::size_t n = 1u << 20;
  EXPECT_LE(RootedMisProtocol(1).message_bit_limit(n), 21u);
  EXPECT_LE(TwoCliquesProtocol().message_bit_limit(n), 22u);
  EXPECT_LE(EobBfsProtocol().message_bit_limit(n), 5u * 21u + 1);
  EXPECT_LE(SyncBfsProtocol().message_bit_limit(n), 6u * 21u);
  EXPECT_LE(BuildDegenerateProtocol(3).message_bit_limit(n), 11u * 21u + 21u);
}

}  // namespace
}  // namespace wb
