// Deterministic corruption fuzzing of every decoder.
//
// The output function of §2 receives nothing but the whiteboard; a
// production-quality decoder must therefore survive *any* board: for each
// protocol we take valid boards and apply systematic mutations — bit flips
// at every position, truncations, message drops, duplications, swaps — and
// require that the decoder either (a) throws wb::DataError, (b) reports a
// clean rejection (nullopt / invalid), or (c) returns a value. What it must
// never do is crash, loop, or throw anything else.
#include <gtest/gtest.h>

#include <functional>

#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/build_forest.h"
#include "src/protocols/build_full.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/krz.h"
#include "src/protocols/mis.h"
#include "src/protocols/subgraph.h"
#include "src/protocols/triangle.h"
#include "src/protocols/two_cliques.h"
#include "src/wb/engine.h"
#include "src/wb/faults.h"

namespace wb {
namespace {
// Bit surgery comes from the failure-model layer (src/wb/faults.h) — the
// same flip_bit / truncate_bits the corruption adapter applies in-engine, so
// this suite fuzzes decoders with exactly the mutations the corrupt:* fault
// model can produce.

/// Apply `decode` to every mutation of `board`; returns the number of boards
/// tried. EXPECTs that only DataError escapes.
std::size_t fuzz_decoder(const Whiteboard& board,
                         const std::function<void(const Whiteboard&)>& decode,
                         const std::string& label) {
  std::size_t tried = 0;
  auto probe = [&](const Whiteboard& mutated) {
    ++tried;
    try {
      decode(mutated);  // value or clean rejection: both fine
    } catch (const DataError&) {
      // loud, typed failure: fine
    } catch (const std::exception& e) {
      ADD_FAILURE() << label << ": decoder leaked " << e.what();
    }
  };

  // Bit flips: every position of every message.
  for (std::size_t mi = 0; mi < board.message_count(); ++mi) {
    for (std::size_t b = 0; b < board.message(mi).size(); ++b) {
      Whiteboard mutated;
      for (std::size_t j = 0; j < board.message_count(); ++j) {
        mutated.append(j == mi ? flip_bit(board.message(j), b)
                               : board.message(j));
      }
      probe(mutated);
    }
  }
  // Truncations of one message.
  for (std::size_t mi = 0; mi < board.message_count(); ++mi) {
    for (std::size_t keep : {std::size_t{0}, board.message(mi).size() / 2}) {
      Whiteboard mutated;
      for (std::size_t j = 0; j < board.message_count(); ++j) {
        mutated.append(j == mi ? truncate_bits(board.message(j), keep)
                               : board.message(j));
      }
      probe(mutated);
    }
  }
  // Drop each message; duplicate each message; swap adjacent pairs.
  for (std::size_t mi = 0; mi < board.message_count(); ++mi) {
    Whiteboard dropped, duplicated;
    for (std::size_t j = 0; j < board.message_count(); ++j) {
      if (j != mi) dropped.append(board.message(j));
      duplicated.append(board.message(j));
      if (j == mi) duplicated.append(board.message(j));
    }
    probe(dropped);
    probe(duplicated);
  }
  for (std::size_t mi = 0; mi + 1 < board.message_count(); ++mi) {
    Whiteboard swapped;
    for (std::size_t j = 0; j < board.message_count(); ++j) {
      if (j == mi) {
        swapped.append(board.message(j + 1));
      } else if (j == mi + 1) {
        swapped.append(board.message(j - 1));
      } else {
        swapped.append(board.message(j));
      }
    }
    probe(swapped);
  }
  return tried;
}

template <typename P>
Whiteboard valid_board(const Graph& g, const P& p) {
  const ExecutionResult r = run_protocol(g, p);
  EXPECT_TRUE(r.ok());
  return r.board;
}

TEST(CorruptionFuzz, BuildForest) {
  const BuildForestProtocol p;
  const Graph g = random_tree(8, 3);
  const Whiteboard board = valid_board(g, p);
  const std::size_t tried = fuzz_decoder(
      board, [&](const Whiteboard& b) { (void)p.output(b, 8); }, p.name());
  EXPECT_GT(tried, 100u);
}

TEST(CorruptionFuzz, BuildDegenerate) {
  const BuildDegenerateProtocol p(2);
  const Graph g = random_k_degenerate(8, 2, 20, 5);
  const Whiteboard board = valid_board(g, p);
  (void)fuzz_decoder(
      board, [&](const Whiteboard& b) { (void)p.output(b, 8); }, p.name());
}

TEST(CorruptionFuzz, BuildFull) {
  const BuildFullProtocol p;
  const Graph g = erdos_renyi(7, 1, 2, 9);
  const Whiteboard board = valid_board(g, p);
  (void)fuzz_decoder(
      board, [&](const Whiteboard& b) { (void)p.output(b, 7); }, p.name());
}

TEST(CorruptionFuzz, Mis) {
  const RootedMisProtocol p(2);
  const Graph g = connected_gnp(8, 1, 3, 4);
  const Whiteboard board = valid_board(g, p);
  (void)fuzz_decoder(
      board, [&](const Whiteboard& b) { (void)p.output(b, 8); }, p.name());
}

TEST(CorruptionFuzz, TwoCliques) {
  const TwoCliquesProtocol p;
  const Whiteboard board = valid_board(two_cliques(4), p);
  (void)fuzz_decoder(
      board, [&](const Whiteboard& b) { (void)p.output(b, 8); }, p.name());
}

TEST(CorruptionFuzz, EobBfs) {
  const EobBfsProtocol p;
  const Graph g = connected_even_odd_bipartite(8, 1, 3, 6);
  const Whiteboard board = valid_board(g, p);
  (void)fuzz_decoder(
      board, [&](const Whiteboard& b) { (void)p.output(b, 8); }, p.name());
}

TEST(CorruptionFuzz, SyncBfs) {
  const SyncBfsProtocol p;
  const Graph g = connected_gnp(8, 1, 3, 7);
  const Whiteboard board = valid_board(g, p);
  (void)fuzz_decoder(
      board, [&](const Whiteboard& b) { (void)p.output(b, 8); }, p.name());
}

TEST(CorruptionFuzz, Subgraph) {
  const SubgraphProtocol p(4);
  const Graph g = erdos_renyi(8, 1, 2, 8);
  const Whiteboard board = valid_board(g, p);
  (void)fuzz_decoder(
      board, [&](const Whiteboard& b) { (void)p.output(b, 8); }, p.name());
}

TEST(CorruptionFuzz, PairChase) {
  const TrianglePairChaseProtocol p(0);
  const Graph g = complete_graph(6);
  const Whiteboard board = valid_board(g, p);
  (void)fuzz_decoder(
      board, [&](const Whiteboard& b) { (void)p.output(b, 6); }, p.name());
}

TEST(CorruptionFuzz, KrzTriangle) {
  const KrzTriangleProtocol p(1, 2, 3);
  const Graph g = complete_graph(5);
  const Whiteboard board = valid_board(g, p);
  (void)fuzz_decoder(
      board, [&](const Whiteboard& b) { (void)p.output(b, 5); }, p.name());
}

TEST(CorruptionFuzz, CorruptingAdapterBoardsStayDecodable) {
  // Boards produced *through* the corruption adapter (the corrupt:* fault
  // model) must already be survivable: the engine firewall expects decoders
  // to raise DataError, never anything else.
  const BuildForestProtocol p;
  const Graph g = random_tree(8, 3);
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const CorruptingAdapter adapted(p, CorruptionModel(1, 2, seed));
    const ExecutionResult r = run_protocol(g, adapted);
    try {
      (void)p.output(r.board, 8);  // value or clean rejection: both fine
    } catch (const DataError&) {
      // loud, typed failure: fine
    } catch (const std::exception& e) {
      ADD_FAILURE() << "seed " << seed << ": decoder leaked " << e.what();
    }
  }
}

}  // namespace
}  // namespace wb
