#include "src/support/bitio.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/support/bits.h"
#include "src/support/check.h"
#include "src/support/rng.h"

namespace wb {
namespace {

TEST(BitsHelpers, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(BitsHelpers, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2((std::uint64_t{1} << 63)), 63);
}

TEST(BitsHelpers, BitsForRange) {
  EXPECT_EQ(bits_for_range(0), 1);
  EXPECT_EQ(bits_for_range(1), 1);
  EXPECT_EQ(bits_for_range(2), 2);
  EXPECT_EQ(bits_for_range(255), 8);
  EXPECT_EQ(bits_for_range(256), 9);
}

TEST(BitsHelpers, BitsForId) {
  EXPECT_EQ(bits_for_id(1), 1);   // id 1 encoded as 0
  EXPECT_EQ(bits_for_id(2), 1);
  EXPECT_EQ(bits_for_id(3), 2);
  EXPECT_EQ(bits_for_id(1024), 10);
}

TEST(BitWriter, EmptyMessage) {
  BitWriter w;
  const Bits b = w.take();
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
}

TEST(BitWriter, SingleBits) {
  BitWriter w;
  w.write_bit(true);
  w.write_bit(false);
  w.write_bit(true);
  const Bits b = w.take();
  ASSERT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
}

TEST(BitWriter, RejectsOverWideValue) {
  BitWriter w;
  EXPECT_THROW(w.write_uint(4, 2), LogicError);
}

TEST(BitWriter, ZeroWidthOnlyForZero) {
  BitWriter w;
  w.write_uint(0, 0);  // fine, writes nothing
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_THROW(w.write_uint(1, 0), LogicError);
}

TEST(BitRoundTrip, FixedWidthAcrossWordBoundaries) {
  // Fields of many widths packed back to back must cross 64-bit word
  // boundaries transparently.
  std::vector<std::pair<std::uint64_t, int>> fields;
  Rng rng(7);
  for (int width = 1; width <= 64; ++width) {
    const std::uint64_t mask =
        width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    fields.emplace_back(rng.next() & mask, width);
  }
  BitWriter w;
  for (const auto& [value, width] : fields) w.write_uint(value, width);
  const Bits b = w.take();
  BitReader r(b);
  for (const auto& [value, width] : fields) {
    EXPECT_EQ(r.read_uint(width), value) << "width " << width;
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(BitRoundTrip, GammaCodes) {
  BitWriter w;
  std::vector<std::uint64_t> values = {1, 2, 3, 4, 5, 63, 64, 65, 12345,
                                       (std::uint64_t{1} << 40) + 17};
  for (auto v : values) w.write_gamma(v);
  const Bits b = w.take();
  BitReader r(b);
  for (auto v : values) EXPECT_EQ(r.read_gamma(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(BitRoundTrip, GammaZeroVariant) {
  BitWriter w;
  for (std::uint64_t v = 0; v < 70; ++v) w.write_gamma0(v);
  const Bits b = w.take();
  BitReader r(b);
  for (std::uint64_t v = 0; v < 70; ++v) EXPECT_EQ(r.read_gamma0(), v);
}

TEST(BitRoundTrip, GammaLengthIsTwoFloorLogPlusOne) {
  for (std::uint64_t v : {1ull, 2ull, 3ull, 7ull, 8ull, 1000ull}) {
    BitWriter w;
    w.write_gamma(v);
    EXPECT_EQ(w.bit_count(), 2 * static_cast<std::size_t>(floor_log2(v)) + 1)
        << "v=" << v;
  }
}

TEST(BitReader, OverrunThrowsDataError) {
  BitWriter w;
  w.write_uint(5, 3);
  const Bits b = w.take();
  BitReader r(b);
  EXPECT_THROW((void)r.read_uint(4), DataError);
}

TEST(BitReader, MalformedGammaThrows) {
  BitWriter w;
  w.write_uint(0, 10);  // ten zeros, no stop bit
  const Bits b = w.take();
  BitReader r(b);
  EXPECT_THROW((void)r.read_gamma(), DataError);
}

TEST(BitsEquality, DirtyTailWordsCompareEqual) {
  // Regression: two bit-equal strings built from words with different garbage
  // past the last bit must compare equal — the constructor masks the tail so
  // equality and hashing stay word-wise.
  const Bits clean(std::vector<std::uint64_t>{0b1011}, 4);
  const Bits dirty(std::vector<std::uint64_t>{0xffffffffffffff0bULL}, 4);
  EXPECT_TRUE(clean == dirty);
  ASSERT_EQ(dirty.size(), 4u);
  EXPECT_TRUE(dirty.bit(0));
  EXPECT_TRUE(dirty.bit(1));
  EXPECT_FALSE(dirty.bit(2));
  EXPECT_TRUE(dirty.bit(3));
  EXPECT_EQ(dirty.word(0), 0b1011u);

  // Multi-word: garbage in the tail of the second word, none in the first.
  const Bits clean2(std::vector<std::uint64_t>{~std::uint64_t{0}, 0x1}, 65);
  const Bits dirty2(
      std::vector<std::uint64_t>{~std::uint64_t{0}, 0xdeadbeef00000001ULL}, 65);
  EXPECT_TRUE(clean2 == dirty2);
  EXPECT_EQ(dirty2.word(1), 0x1u);

  // Exact multiple of 64 bits: no tail to mask, words taken verbatim.
  const Bits full(std::vector<std::uint64_t>{0xabcdef0123456789ULL}, 64);
  EXPECT_EQ(full.word(0), 0xabcdef0123456789ULL);
}

TEST(BitsSmallBuffer, InlineAndHeapRepresentationsRoundTrip) {
  // kInlineBits is the SSO boundary; strings on both sides must copy, move,
  // and compare identically.
  for (const std::size_t n_bits :
       {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        Bits::kInlineBits - 1, Bits::kInlineBits, Bits::kInlineBits + 1,
        std::size_t{333}}) {
    BitWriter w;
    for (std::size_t i = 0; i < n_bits; ++i) w.write_bit(i % 3 == 0);
    const Bits b = w.take();
    ASSERT_EQ(b.size(), n_bits);
    for (std::size_t i = 0; i < n_bits; ++i) {
      ASSERT_EQ(b.bit(i), i % 3 == 0) << "n_bits=" << n_bits << " i=" << i;
    }
    Bits copy = b;  // deep copy
    EXPECT_TRUE(copy == b);
    Bits moved = std::move(copy);
    EXPECT_TRUE(moved == b);
    Bits assigned;
    assigned = moved;
    EXPECT_TRUE(assigned == b);
    moved = Bits{};
    EXPECT_TRUE(moved.empty());
  }
}

TEST(BitWriter, TakeResetsForReuse) {
  BitWriter w;
  w.write_uint(0b101, 3);
  const Bits first = w.take();
  EXPECT_EQ(w.bit_count(), 0u);
  // The second message must not see residue of the first (the writer relies
  // on all-zero words for OR-accumulation).
  w.write_uint(0b010, 3);
  const Bits second = w.take();
  EXPECT_EQ(first.size(), 3u);
  EXPECT_EQ(second.size(), 3u);
  EXPECT_TRUE(first.bit(0));
  EXPECT_FALSE(second.bit(0));
  EXPECT_TRUE(second.bit(1));
  EXPECT_FALSE(first == second);
}

TEST(BitWriter, ResetDiscardsPendingBits) {
  BitWriter w;
  for (int i = 0; i < 100; ++i) w.write_uint(~std::uint64_t{0}, 64);
  w.reset();
  EXPECT_EQ(w.bit_count(), 0u);
  w.write_uint(0, 64);
  const Bits b = w.take();
  ASSERT_EQ(b.size(), 64u);
  EXPECT_EQ(b.word(0), 0u);
}

TEST(BitWriter, ReusedWriterFuzzRoundTrip) {
  Rng rng(1234);
  BitWriter w;  // one writer across all messages, as the protocols use it
  for (int msg = 0; msg < 50; ++msg) {
    std::vector<std::pair<std::uint64_t, int>> fields;
    const int count = static_cast<int>(rng.range(1, 30));
    for (int i = 0; i < count; ++i) {
      const int width = static_cast<int>(rng.range(1, 64));
      const std::uint64_t mask =
          width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
      const std::uint64_t value = rng.next() & mask;
      fields.emplace_back(value, width);
      w.write_uint(value, width);
    }
    const Bits b = w.take();
    BitReader r(b);
    for (const auto& [value, width] : fields) {
      ASSERT_EQ(r.read_uint(width), value) << "msg " << msg;
    }
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(BitsEquality, ComparesContentAndLength) {
  BitWriter w1, w2, w3;
  w1.write_uint(0b1011, 4);
  w2.write_uint(0b1011, 4);
  w3.write_uint(0b1011, 5);
  const Bits a = w1.take(), b = w2.take(), c = w3.take();
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

class BitFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitFuzzTest, RandomFieldSequencesRoundTrip) {
  Rng rng(GetParam());
  std::vector<std::pair<std::uint64_t, int>> fields;
  BitWriter w;
  const int count = 200;
  for (int i = 0; i < count; ++i) {
    const int width = static_cast<int>(rng.range(1, 64));
    const std::uint64_t mask =
        width == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    const std::uint64_t value = rng.next() & mask;
    fields.emplace_back(value, width);
    w.write_uint(value, width);
  }
  const Bits b = w.take();
  BitReader r(b);
  for (const auto& [value, width] : fields) EXPECT_EQ(r.read_uint(width), value);
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace wb
