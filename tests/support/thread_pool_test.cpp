#include "src/support/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

namespace wb {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u) << "round " << round;
  }
}

TEST(ThreadPool, MaxWorkersCapsObservedConcurrency) {
  ThreadPool pool(8);
  std::atomic<int> current{0};
  std::atomic<int> peak{0};
  pool.parallel_for(
      200,
      [&](std::size_t) {
        const int now = current.fetch_add(1, std::memory_order_relaxed) + 1;
        int seen = peak.load(std::memory_order_relaxed);
        while (now > seen &&
               !peak.compare_exchange_weak(seen, now,
                                           std::memory_order_relaxed)) {
        }
        current.fetch_sub(1, std::memory_order_relaxed);
      },
      2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPool, SingleWorkerRunsInlineInIndexOrder) {
  ThreadPool pool(4);
  std::vector<std::size_t> order;  // unsynchronized: inline path is serial
  pool.parallel_for(
      50, [&](std::size_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 50u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ThreadPool, SmallestIndexExceptionWinsAndEveryTaskStillRuns) {
  for (const std::size_t max_workers : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    try {
      pool.parallel_for(
          64,
          [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
            if (i == 41) throw std::runtime_error("late failure");
            if (i == 7) throw std::runtime_error("early failure");
          },
          max_workers);
      FAIL() << "expected an exception (max_workers=" << max_workers << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "early failure");
    }
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // Same pool from inside a worker: must run inline, not wait on workers
    // that cannot be freed until this task returns.
    pool.parallel_for(10, [&](std::size_t j) {
      inner_total.fetch_add(j + 1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8u * 55u);
}

TEST(ThreadPool, SharedPoolSupportsTheDeterminismSuitesThreadCounts) {
  // The {1,2,4,8}-thread determinism suites need real concurrency even on
  // small hosts; shared() guarantees at least 8 workers.
  EXPECT_GE(ThreadPool::shared().thread_count(), 8u);
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

}  // namespace
}  // namespace wb
