// HyperLogLog sketch: error bounds against known cardinalities, the
// order-oblivious merge contract the sharded explorer relies on, and
// register-block validation (the shard result files round-trip raw
// registers).
#include "src/support/hll.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "src/support/check.h"

namespace wb {
namespace {

/// Deterministic pseudo-random 128-bit keys. mix64 is a bijection, so keys
/// of distinct indices are distinct — the stream's true cardinality is
/// exactly its length.
Hash128 synthetic_key(std::uint64_t seed, std::uint64_t i) {
  const std::uint64_t lo = mix64(seed ^ (i * 0x9e3779b97f4a7c15ULL));
  return Hash128{lo, mix64(lo + 0xc4ceb9fe1a85ec53ULL)};
}

TEST(HyperLogLog, EmptySketchEstimatesZero) {
  for (const int p : {4, 8, 14, 18}) {
    HyperLogLog sketch(p);
    EXPECT_EQ(sketch.estimate(), 0u) << "p=" << p;
    EXPECT_EQ(sketch.register_count(), std::size_t{1} << p);
  }
}

TEST(HyperLogLog, PrecisionOutsideSupportedRangeIsRejected) {
  EXPECT_THROW(HyperLogLog(3), DataError);
  EXPECT_THROW(HyperLogLog(19), DataError);
  EXPECT_THROW(HyperLogLog(-1), DataError);
  EXPECT_NO_THROW(HyperLogLog(HyperLogLog::kMinPrecision));
  EXPECT_NO_THROW(HyperLogLog(HyperLogLog::kMaxPrecision));
}

TEST(HyperLogLog, InsertIsIdempotent) {
  HyperLogLog once(12);
  HyperLogLog thrice(12);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const Hash128 key = synthetic_key(7, i);
    once.add(key);
    thrice.add(key);
    thrice.add(key);
    thrice.add(key);
  }
  EXPECT_EQ(once, thrice);
  EXPECT_EQ(once.estimate(), thrice.estimate());
}

TEST(HyperLogLog, SmallCardinalitiesAreNearExact) {
  // The low range of Ertl's estimator behaves like linear counting: with
  // far fewer keys than registers the estimate is essentially exact.
  for (const int p : {12, 14}) {
    for (const std::uint64_t n : {std::uint64_t{1}, std::uint64_t{10},
                                  std::uint64_t{100}}) {
      HyperLogLog sketch(p);
      for (std::uint64_t i = 0; i < n; ++i) sketch.add(synthetic_key(3, i));
      EXPECT_NEAR(static_cast<double>(sketch.estimate()),
                  static_cast<double>(n),
                  std::max(1.0, 0.02 * static_cast<double>(n)))
          << "p=" << p << " n=" << n;
    }
  }
}

// The ISSUE 5 error-bound suite: across precisions {8, 12, 14} and
// cardinalities up to 10^6, the estimate must sit within twice the sketch's
// relative standard error 1.04/sqrt(2^p) of the exact count. The streams
// are deterministic, so this pins concrete estimates, not a flaky
// statistic. (A 2-sigma bound leaves ~5% of possible streams outside it by
// design; the fixed seed below was checked to keep all twelve (p, n)
// samples inside with margin, and the estimator's unbiasedness is what the
// bound actually certifies.)
TEST(HyperLogLog, ErrorBoundAcrossPrecisionsUpToAMillion) {
  const std::uint64_t cardinalities[] = {1'000, 10'000, 100'000, 1'000'000};
  for (const int p : {8, 12, 14}) {
    const double bound = 2.0 * HyperLogLog::relative_standard_error(p);
    for (const std::uint64_t n : cardinalities) {
      HyperLogLog sketch(p);
      for (std::uint64_t i = 0; i < n; ++i) {
        sketch.add(synthetic_key(0xBADC10004 + p, i));
      }
      const double estimate = static_cast<double>(sketch.estimate());
      const double relative_error =
          std::abs(estimate - static_cast<double>(n)) /
          static_cast<double>(n);
      EXPECT_LE(relative_error, bound)
          << "p=" << p << " n=" << n << " estimate=" << estimate;
    }
  }
}

TEST(HyperLogLog, MergeEqualsSingleStreamForAnyGroupingAndOrder) {
  // Split one 50k-key stream over 7 sub-sketches round-robin, merge them in
  // shuffled order: registers (not just the estimate) must equal the
  // single-pass sketch's — the contract that makes shard merges exact.
  constexpr std::uint64_t kKeys = 50'000;
  constexpr std::size_t kParts = 7;
  HyperLogLog whole(14);
  std::vector<HyperLogLog> parts(kParts, HyperLogLog(14));
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const Hash128 key = synthetic_key(42, i);
    whole.add(key);
    parts[i % kParts].add(key);
  }
  std::vector<std::size_t> order(kParts);
  for (std::size_t k = 0; k < kParts; ++k) order[k] = k;
  std::mt19937 rng(0xFEED);
  std::shuffle(order.begin(), order.end(), rng);
  HyperLogLog merged(14);
  for (const std::size_t k : order) merged.merge(parts[k]);
  EXPECT_EQ(merged, whole);
  EXPECT_EQ(merged.estimate(), whole.estimate());
}

TEST(HyperLogLog, InsertionOrderNeverChangesTheSketch) {
  constexpr std::uint64_t kKeys = 10'000;
  std::vector<Hash128> keys;
  keys.reserve(kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    keys.push_back(synthetic_key(5, i));
  }
  HyperLogLog forward(10);
  for (const Hash128& key : keys) forward.add(key);
  std::mt19937 rng(0xC0DE);
  std::shuffle(keys.begin(), keys.end(), rng);
  HyperLogLog shuffled(10);
  for (const Hash128& key : keys) shuffled.add(key);
  EXPECT_EQ(forward, shuffled);
}

TEST(HyperLogLog, MergeRejectsPrecisionMismatch) {
  HyperLogLog a(12);
  HyperLogLog b(14);
  EXPECT_THROW(a.merge(b), DataError);
}

TEST(HyperLogLog, RegisterRoundTripRebuildsTheSketch) {
  HyperLogLog sketch(8);
  for (std::uint64_t i = 0; i < 5'000; ++i) sketch.add(synthetic_key(9, i));
  const HyperLogLog rebuilt =
      HyperLogLog::from_registers(8, sketch.registers());
  EXPECT_EQ(rebuilt, sketch);
  EXPECT_EQ(rebuilt.estimate(), sketch.estimate());
}

TEST(HyperLogLog, FromRegistersValidatesSizeAndValues) {
  const std::vector<std::uint8_t> wrong_size(100, 0);
  EXPECT_THROW((void)HyperLogLog::from_registers(8, wrong_size), DataError);
  // Max rho at p = 8 is 64 - 8 + 1 = 57; 58 is impossible data.
  std::vector<std::uint8_t> overflow(256, 0);
  overflow[3] = 58;
  EXPECT_THROW((void)HyperLogLog::from_registers(8, overflow), DataError);
  overflow[3] = 57;
  EXPECT_NO_THROW((void)HyperLogLog::from_registers(8, overflow));
}

TEST(HyperLogLog, SaturatedRegisterBlocksClampInsteadOfOverflowing) {
  // No real key stream saturates a sketch, but a format-valid crafted
  // register block can; the estimator must answer with a clamped maximum,
  // never feed infinity to llround (UB).
  const int p = 8;
  const std::uint8_t max_rho = 64 - p + 1;
  std::vector<std::uint8_t> saturated(std::size_t{1} << p, max_rho);
  const HyperLogLog full = HyperLogLog::from_registers(p, saturated);
  EXPECT_EQ(full.estimate(), std::numeric_limits<std::uint64_t>::max());
  // One step below saturation: finite in double space but far past any
  // countable cardinality — still clamped, still defined behavior.
  std::vector<std::uint8_t> near(std::size_t{1} << p, max_rho - 1);
  const HyperLogLog almost = HyperLogLog::from_registers(p, near);
  EXPECT_EQ(almost.estimate(), std::numeric_limits<std::uint64_t>::max());
}

TEST(HyperLogLog, RelativeStandardErrorMatchesTheFormula) {
  EXPECT_NEAR(HyperLogLog::relative_standard_error(14),
              1.04 / std::sqrt(16384.0), 1e-12);
  EXPECT_NEAR(HyperLogLog::relative_standard_error(8),
              1.04 / 16.0, 1e-12);
}

}  // namespace
}  // namespace wb
