#include "src/support/table.h"

#include <gtest/gtest.h>

#include "src/support/check.h"

namespace wb {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"model", "result"});
  t.add_row({"SIMASYNC", "yes"});
  t.add_row({"SYNC", "no"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| model    | result |"), std::string::npos);
  EXPECT_NE(out.find("| SIMASYNC | yes    |"), std::string::npos);
  EXPECT_NE(out.find("| SYNC     | no     |"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), LogicError);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), LogicError);
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace wb
