#include "src/support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace wb {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next(), vb = b.next(), vc = c.next();
    all_equal = all_equal && (va == vb);
    any_diff = any_diff || (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.range(5, 8));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{5, 6, 7, 8}));
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 100));
    EXPECT_TRUE(rng.chance(100, 100));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(copy);
  EXPECT_NE(copy, v);  // overwhelmingly likely
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng a(21);
  Rng b = a.split();
  bool differ = false;
  for (int i = 0; i < 20; ++i) differ = differ || (a.next() != b.next());
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace wb
