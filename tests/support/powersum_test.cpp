#include "src/support/powersum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "src/support/check.h"

namespace wb {
namespace {

std::vector<std::uint32_t> subset_from_mask(std::uint32_t mask,
                                            std::uint32_t n) {
  std::vector<std::uint32_t> s;
  for (std::uint32_t v = 1; v <= n; ++v) {
    if ((mask >> (v - 1)) & 1u) s.push_back(v);
  }
  return s;
}

TEST(PowerSums, MatchesDirectComputation) {
  const std::vector<std::uint32_t> xs = {3, 7, 10};
  const auto p = power_sums(xs, 3);
  EXPECT_EQ(p[0], 3 + 7 + 10);
  EXPECT_EQ(p[1], 9 + 49 + 100);
  EXPECT_EQ(p[2], 27 + 343 + 1000);
}

TEST(PowerSums, EmptySetIsZero) {
  const std::vector<std::uint32_t> xs;
  const auto p = power_sums(xs, 4);
  for (i128 v : p) EXPECT_EQ(v, 0);
}

TEST(PowerSums, SubtractInvertsInsertion) {
  std::vector<std::uint32_t> xs = {2, 5, 9, 11};
  auto p = power_sums(xs, 4);
  power_sums_subtract(p, 9);
  const std::vector<std::uint32_t> rest = {2, 5, 11};
  EXPECT_EQ(p, power_sums(rest, 4));
}

TEST(Ipow, ComputesAndGuards) {
  EXPECT_EQ(ipow(2, 8), 256);
  EXPECT_EQ(ipow(10, 0), 1);
  EXPECT_EQ(i128_to_string(ipow(1000, 5)), "1000000000000000");
}

TEST(I128ToString, HandlesSignsAndZero) {
  EXPECT_EQ(i128_to_string(0), "0");
  EXPECT_EQ(i128_to_string(static_cast<i128>(-42)), "-42");
  EXPECT_EQ(i128_to_string(static_cast<i128>(1234567890123456789LL)),
            "1234567890123456789");
}

TEST(NewtonIdentities, RecoversElementarySymmetric) {
  // S = {2, 3, 5}: e1 = 10, e2 = 31, e3 = 30.
  const std::vector<std::uint32_t> xs = {2, 3, 5};
  const auto p = power_sums(xs, 3);
  const auto e = newton_identities(p, 3);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ((*e)[0], 10);
  EXPECT_EQ((*e)[1], 31);
  EXPECT_EQ((*e)[2], 30);
}

TEST(NewtonIdentities, DetectsNonIntegralSystems) {
  // p1 = 1, p2 = 2 would need 2*e2 = p1*e1 - p2 = -1: not a multiset.
  const std::vector<i128> p = {1, 2};
  EXPECT_EQ(newton_identities(p, 2), std::nullopt);
}

TEST(DecodeSubset, EmptySubset) {
  const std::vector<i128> p = {0, 0, 0};
  const auto s = decode_subset(p, 0, 10);
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->empty());
}

TEST(DecodeSubset, RejectsNonZeroSumsForEmpty) {
  const std::vector<i128> p = {1, 1, 1};
  EXPECT_EQ(decode_subset(p, 0, 10), std::nullopt);
}

TEST(DecodeSubset, RejectsOutOfRangeRoots) {
  // S = {12} but candidates only go up to 10.
  const std::vector<std::uint32_t> xs = {12};
  const auto p = power_sums(xs, 2);
  EXPECT_EQ(decode_subset(p, 1, 10), std::nullopt);
}

TEST(DecodeSubset, RejectsCorruptedSums) {
  const std::vector<std::uint32_t> xs = {2, 7};
  auto p = power_sums(xs, 2);
  p[1] += 1;  // corrupt p2
  EXPECT_EQ(decode_subset(p, 2, 10), std::nullopt);
}

// Theorem 1 (Wright): power sums p_1..p_k identify a ≤k-subset uniquely.
// Verified exhaustively: every subset decodes back to itself, and all
// fingerprints are distinct.
class WrightUniquenessTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(WrightUniquenessTest, FingerprintsAreInjectiveAndDecodable) {
  const auto [n, k] = GetParam();
  std::set<std::vector<i128>> seen_by_size[6];
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const auto subset = subset_from_mask(mask, n);
    if (subset.size() > static_cast<std::size_t>(k)) continue;
    const auto p = power_sums(subset, k);
    const int d = static_cast<int>(subset.size());
    // Injectivity within each size class (size is part of the message).
    EXPECT_TRUE(seen_by_size[d].insert(p).second)
        << "fingerprint collision at n=" << n << " k=" << k;
    // Decodability.
    const auto decoded = decode_subset(p, d, n);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, subset);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallUniverse, WrightUniquenessTest,
    ::testing::Values(std::tuple{8u, 1}, std::tuple{8u, 2}, std::tuple{8u, 3},
                      std::tuple{12u, 2}, std::tuple{12u, 3},
                      std::tuple{14u, 3}, std::tuple{10u, 4}, std::tuple{9u, 5}));

// Stronger injectivity: fingerprints distinguish subsets even across size
// classes when sizes differ... trivially (p1 of larger set differs unless
// values cancel — they can't, all positive). Check on a mixed pool.
TEST(WrightUniqueness, AcrossSizesDistinctByConstruction) {
  const std::uint32_t n = 10;
  const int k = 3;
  std::set<std::pair<int, std::vector<i128>>> seen;
  std::size_t total = 0;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const auto subset = subset_from_mask(mask, n);
    if (subset.size() > static_cast<std::size_t>(k)) continue;
    EXPECT_TRUE(
        seen.insert({static_cast<int>(subset.size()), power_sums(subset, k)})
            .second);
    ++total;
  }
  // C(10,0)+C(10,1)+C(10,2)+C(10,3) = 1+10+45+120
  EXPECT_EQ(total, 176u);
}

TEST(SubsetTable, AgreesWithNewtonDecoder) {
  const std::uint32_t n = 12;
  const int k = 3;
  const SubsetTable table(n, k);
  EXPECT_EQ(table.size(), 1u + 12u + 66u + 220u);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    const auto subset = subset_from_mask(mask, n);
    if (subset.size() > static_cast<std::size_t>(k)) continue;
    const auto p = power_sums(subset, k);
    const int d = static_cast<int>(subset.size());
    const auto via_table = table.lookup(p, d);
    const auto via_newton = decode_subset(p, d, n);
    ASSERT_TRUE(via_table.has_value());
    ASSERT_TRUE(via_newton.has_value());
    EXPECT_EQ(*via_table, *via_newton);
  }
}

TEST(SubsetTable, MissReturnsNullopt) {
  const SubsetTable table(8, 2);
  std::vector<i128> bogus = {1000, 1};
  EXPECT_EQ(table.lookup(bogus, 2), std::nullopt);
}

TEST(DecodeSubset, LargeValuesUseWideArithmetic) {
  // IDs near 2^16 with k = 4 exercise sums beyond 64 bits. The decoder
  // returns ascending IDs.
  const std::vector<std::uint32_t> xs = {64997, 64998, 64999, 65000};
  const auto p = power_sums(xs, 4);
  const auto s = decode_subset(p, 4, 65001);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, xs);
}

}  // namespace
}  // namespace wb
