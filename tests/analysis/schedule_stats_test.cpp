#include "src/analysis/schedule_stats.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/protocols/build_forest.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/mis.h"
#include "src/wb/adapters.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

TEST(ScheduleStats, SimultaneousProtocolIsOneWave) {
  const Graph g = random_tree(20, 3);
  const BuildForestProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  const ScheduleStats s = analyze_schedule(r);
  EXPECT_EQ(s.activation_waves, 1u);
  EXPECT_EQ(s.max_wave, 20u);
  EXPECT_EQ(s.writes, 20u);
  // First-fit adversary drains in ID order: latencies are 0..19.
  EXPECT_EQ(s.max_latency, 19u);
  EXPECT_DOUBLE_EQ(s.mean_latency, 9.5);
}

TEST(ScheduleStats, SequentialAdapterHasNWavesOfOne) {
  const Graph g = connected_gnp(12, 1, 3, 5);
  const RootedMisProtocol native(3);
  const SimSyncInAsync<MisOutput> wrapped(native);
  const ExecutionResult r = run_protocol(g, wrapped);
  const ScheduleStats s = analyze_schedule(r);
  EXPECT_EQ(s.activation_waves, 12u);
  EXPECT_EQ(s.max_wave, 1u);
  EXPECT_EQ(s.max_latency, 0u);  // each node writes the round it activates
}

TEST(ScheduleStats, LayeredProtocolWavesMatchBfsLayers) {
  // A path graph in EOB-BFS: one activation wave per BFS layer.
  const Graph g = path_graph(7);  // layers 0..6 from root 1
  const EobBfsProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_TRUE(r.ok());
  const ScheduleStats s = analyze_schedule(r);
  EXPECT_EQ(s.activation_waves, 7u);
  EXPECT_EQ(s.max_wave, 1u);
}

TEST(ScheduleStats, HistogramSumsToWrites) {
  const Graph g = connected_gnp(30, 1, 4, 9);
  const BuildForestProtocol p;
  RandomAdversary adv(3);
  const ExecutionResult r = run_protocol(g, p, adv);
  const ScheduleStats s = analyze_schedule(r);
  std::size_t total = 0;
  for (const auto& [latency, count] : s.latency_histogram) total += count;
  EXPECT_EQ(total, s.writes);
}

TEST(ScheduleStats, DeadlockedRunsAreAnalyzable) {
  GraphBuilder b(4);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const Graph g = b.build();  // triangle + isolated node 4
  const EobBfsProtocol p(EobMode::kBipartiteNoCheck);
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_EQ(r.status, RunStatus::kDeadlock);
  const ScheduleStats s = analyze_schedule(r);
  EXPECT_EQ(s.writes, 3u);  // node 4 never activates
  EXPECT_LT(s.latency.size(), 4u);
}

}  // namespace
}  // namespace wb
