#include "src/analysis/board_stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/generators.h"
#include "src/protocols/build_forest.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

Bits bits_of(std::uint64_t value, int width) {
  BitWriter w;
  w.write_uint(value, width);
  return w.take();
}

TEST(BoardStats, EmptyBoard) {
  const Whiteboard board;
  const BoardStats s = analyze_board(board);
  EXPECT_EQ(s.messages, 0u);
  EXPECT_EQ(s.total_bits, 0u);
  EXPECT_EQ(s.distinct_messages, 0u);
}

TEST(BoardStats, IdenticalMessagesHaveZeroEntropy) {
  Whiteboard board;
  for (int i = 0; i < 8; ++i) board.append(bits_of(5, 4));
  const BoardStats s = analyze_board(board);
  EXPECT_EQ(s.messages, 8u);
  EXPECT_EQ(s.distinct_messages, 1u);
  EXPECT_DOUBLE_EQ(s.content_entropy_bits, 0.0);
  EXPECT_EQ(s.min_message_bits, 4u);
  EXPECT_EQ(s.max_message_bits, 4u);
}

TEST(BoardStats, AllDistinctMessagesHaveFullEntropy) {
  Whiteboard board;
  for (std::uint64_t i = 0; i < 16; ++i) board.append(bits_of(i, 4));
  const BoardStats s = analyze_board(board);
  EXPECT_EQ(s.distinct_messages, 16u);
  EXPECT_NEAR(s.content_entropy_bits, 4.0, 1e-9);
}

TEST(BoardStats, LengthHistogramAndMean) {
  Whiteboard board;
  board.append(bits_of(1, 2));
  board.append(bits_of(1, 2));
  board.append(bits_of(1, 6));
  const BoardStats s = analyze_board(board);
  EXPECT_EQ(s.length_histogram.at(2), 2u);
  EXPECT_EQ(s.length_histogram.at(6), 1u);
  EXPECT_NEAR(s.mean_message_bits, 10.0 / 3.0, 1e-9);
}

TEST(BoardStats, ContentDistinguishesEqualLengths) {
  Whiteboard board;
  board.append(bits_of(0b1010, 4));
  board.append(bits_of(0b0101, 4));
  const BoardStats s = analyze_board(board);
  EXPECT_EQ(s.distinct_messages, 2u);
}

TEST(BoardStats, UtilizationOfRealRun) {
  const Graph g = random_tree(32, 7);
  const BuildForestProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_TRUE(r.ok());
  const BoardStats s = analyze_board(r.board);
  const double u = budget_utilization(s, 32, p.message_bit_limit(32));
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
  // Every message carries a distinct ID: all distinct.
  EXPECT_EQ(s.distinct_messages, 32u);
}

TEST(BoardStats, ZeroBudgetGuard) {
  const BoardStats empty;
  EXPECT_DOUBLE_EQ(budget_utilization(empty, 0, 0), 0.0);
}

}  // namespace
}  // namespace wb
