// The frame layer's contract: encode∘decode is the identity, arbitrary
// chunking never matters, and malformed input — truncated, oversized, or
// garbage length prefixes included — is rejected with a diagnostic, never a
// hang, an unbounded allocation, or a crash. These rejection cases sit
// alongside the shard layer's v2 document rejections (tests/wb/shard_test.cpp)
// because the fleet moves exactly those documents inside these frames.
#include "src/fleet/transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/support/check.h"

namespace wb::fleet {
namespace {

std::optional<Frame> decode_all(const std::string& wire) {
  FrameDecoder decoder;
  decoder.feed(wire);
  return decoder.next();
}

TEST(Transport, EncodeDecodeRoundTripsEveryType) {
  for (const FrameType type :
       {FrameType::kHello, FrameType::kSpec, FrameType::kResult,
        FrameType::kHeartbeat, FrameType::kShutdown, FrameType::kError,
        FrameType::kAck}) {
    const Frame frame{type, "payload for " + std::string(to_string(type))};
    const std::optional<Frame> decoded = decode_all(encode_frame(frame));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, frame);
  }
}

TEST(Transport, WireFormIsTheDocumentedHeaderLine) {
  EXPECT_EQ(encode_frame(Frame{FrameType::kSpec, "abc"}),
            "wbframe v1 spec 3\nabc");
  EXPECT_EQ(encode_frame(Frame{FrameType::kHeartbeat, ""}),
            "wbframe v1 heartbeat 0\n");
}

TEST(Transport, EmptyPayloadAndBinaryPayloadSurvive) {
  const Frame empty{FrameType::kShutdown, ""};
  EXPECT_EQ(decode_all(encode_frame(empty)), empty);

  const std::string binary("with\nnewlines\0and nul bytes", 27);
  const Frame frame{FrameType::kResult, binary};
  EXPECT_EQ(decode_all(encode_frame(frame)), frame);
}

TEST(Transport, DecoderIsIncremental_ByteAtATime) {
  const Frame a{FrameType::kSpec, "first document"};
  const Frame b{FrameType::kResult, "second document"};
  const std::string wire = encode_frame(a) + encode_frame(b);
  FrameDecoder decoder;
  std::vector<Frame> seen;
  for (const char c : wire) {
    decoder.feed(&c, 1);
    while (const std::optional<Frame> frame = decoder.next()) {
      seen.push_back(*frame);
    }
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], a);
  EXPECT_EQ(seen[1], b);
  EXPECT_TRUE(decoder.idle());
}

TEST(Transport, PartialFrameReportsNotIdle) {
  FrameDecoder decoder;
  decoder.feed("wbframe v1 spec 10\nhalf");
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_FALSE(decoder.idle());  // EOF here would be a mid-frame death
}

// --- rejection: every way a length-prefixed stream can lie ------------------

void expect_rejected(const std::string& wire, const char* needle) {
  FrameDecoder decoder;
  decoder.feed(wire);
  try {
    (void)decoder.next();
    FAIL() << "accepted: " << wire.substr(0, 60);
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic '" << e.what() << "' should mention '" << needle << "'";
  }
}

TEST(Transport, RejectsBadMagic) {
  expect_rejected("wbfraME v1 spec 3\nabc", "magic");
  expect_rejected("GET / HTTP/1.1\r\n\r\n", "magic");
  expect_rejected(std::string("\x00\x01\x02\x03garbage\n", 12), "magic");
}

TEST(Transport, RejectsVersionSkew) {
  expect_rejected("wbframe v2 spec 3\nabc", "version");
  expect_rejected("wbframe  spec 3\nabc", "version");
}

TEST(Transport, RejectsUnknownType) {
  expect_rejected("wbframe v1 gossip 3\nabc", "frame type");
  expect_rejected("wbframe v1  3\nabc", "frame type");
}

TEST(Transport, RejectsGarbageLengthPrefixes) {
  expect_rejected("wbframe v1 spec x\n", "length");
  expect_rejected("wbframe v1 spec -1\n", "length");
  expect_rejected("wbframe v1 spec 3abc\n", "length");
  expect_rejected("wbframe v1 spec\n", "length");
  expect_rejected("wbframe v1 spec 1 2\n", "length");
}

TEST(Transport, RejectsOversizedLengthWithoutAllocating) {
  // A hostile length must be rejected from the header alone — the payload
  // cap guards the allocation, not an OOM.
  expect_rejected("wbframe v1 spec 99999999999999999999\n", "length");
  expect_rejected(
      "wbframe v1 spec " + std::to_string(kMaxFramePayload + 1) + "\n", "cap");
}

TEST(Transport, RejectsUnterminatedHeaderBeforeBufferingForever) {
  // A stream that never sends '\n' must fail at the header bound, not
  // buffer unboundedly.
  FrameDecoder decoder;
  decoder.feed(std::string(kMaxHeaderBytes + 1, 'a'));
  EXPECT_THROW((void)decoder.next(), DataError);
}

TEST(Transport, RejectsOverlongHeaderLineEvenWithNewline) {
  expect_rejected("wbframe v1 spec " + std::string(60, '0') + "\n", "bound");
}

TEST(Transport, PoisonedDecoderStaysPoisoned) {
  FrameDecoder decoder;
  decoder.feed("wbframe v1 bogus 0\n");
  EXPECT_THROW((void)decoder.next(), DataError);
  // Feeding perfectly valid bytes cannot resynchronize a framing error.
  decoder.feed(encode_frame(Frame{FrameType::kHello, ""}));
  EXPECT_THROW((void)decoder.next(), DataError);
  EXPECT_FALSE(decoder.idle());
}

TEST(Transport, FrameTypeTokensRoundTrip) {
  for (const char* token :
       {"hello", "spec", "result", "heartbeat", "shutdown", "error", "ack"}) {
    EXPECT_EQ(to_string(frame_type_from_string(token)), token);
  }
  EXPECT_THROW((void)frame_type_from_string("HELLO"), DataError);
  EXPECT_THROW((void)frame_type_from_string(""), DataError);
}

// --- the hello v2 document: the fleet's identity handshake ------------------

TEST(Transport, HelloV2RoundTrips) {
  HelloInfo info;
  info.version = kHelloVersion;
  info.host = "rack7-node3";
  info.pid = 41235;
  info.threads = 8;
  info.heartbeat_ms = 200;
  const HelloInfo parsed = parse_hello(serialize_hello(info));
  EXPECT_EQ(parsed, info);
  EXPECT_EQ(parsed.identity(), "rack7-node3/41235");
}

TEST(Transport, HelloV2WireFormIsTheDocumentedDocument) {
  HelloInfo info;
  info.host = "h";
  info.pid = 7;
  info.threads = 2;
  info.heartbeat_ms = 0;
  info.version = kHelloVersion;
  EXPECT_EQ(serialize_hello(info),
            "wbhello v2\nhost h\npid 7\nthreads 2\nheartbeat-ms 0\n");
}

TEST(Transport, LegacyHelloPayloadsParseAsAnonymousV1) {
  // PR 6 workers sent "pid N\n" (or anything at all); they stay accepted as
  // anonymous locals: version 1, no identity, heartbeat unknown.
  for (const std::string payload : {"pid 1234\n", "", "anything goes"}) {
    const HelloInfo info = parse_hello(payload);
    EXPECT_EQ(info.version, 1);
    EXPECT_EQ(info.identity(), "");
    EXPECT_EQ(info.heartbeat_ms, -1);
  }
}

TEST(Transport, HelloVersionSkewIsRefused) {
  // A worker from the future must be refused up front — admitting it and
  // failing mid-sweep would waste the whole dispatch.
  try {
    (void)parse_hello("wbhello v3\nhost h\npid 1\nwormhole yes\n");
    FAIL() << "accepted a version-skewed hello";
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  EXPECT_THROW((void)parse_hello("wbhello v\nhost h\npid 1\n"), DataError);
  EXPECT_THROW((void)parse_hello("wbhello \nhost h\npid 1\n"), DataError);
}

TEST(Transport, HelloV2RequiresHostAndPid) {
  EXPECT_THROW((void)parse_hello("wbhello v2\npid 1\n"), DataError);
  EXPECT_THROW((void)parse_hello("wbhello v2\nhost h\n"), DataError);
  EXPECT_THROW((void)parse_hello("wbhello v2\nhost h\npid zero\n"), DataError);
  EXPECT_THROW((void)parse_hello("wbhello v2\nhost \npid 1\n"), DataError);
}

TEST(Transport, HelloV2IgnoresUnknownKeysForForwardCompat) {
  const HelloInfo info =
      parse_hello("wbhello v2\nhost h\npid 9\ncolor mauve\nthreads 3\n");
  EXPECT_EQ(info.host, "h");
  EXPECT_EQ(info.pid, 9);
  EXPECT_EQ(info.threads, 3u);
}

// --- fuzz-style chunked feeding: satellite 3 --------------------------------

/// splitmix64: a tiny deterministic PRNG so the chunk schedule is a fixed
/// function of the seed — reproducible without <random>'s unspecified
/// distributions.
class SplitMix {
 public:
  explicit SplitMix(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

std::vector<Frame> every_type_frames() {
  SplitMix payload_rng(0xfeedULL);
  std::vector<Frame> frames;
  for (const FrameType type :
       {FrameType::kHello, FrameType::kSpec, FrameType::kResult,
        FrameType::kHeartbeat, FrameType::kShutdown, FrameType::kError,
        FrameType::kAck}) {
    // Payloads with newlines, NULs, and high bytes: framing must never peek
    // inside the payload.
    std::string payload;
    const std::size_t size = payload_rng.next() % 512;
    for (std::size_t i = 0; i < size; ++i) {
      payload.push_back(static_cast<char>(payload_rng.next() & 0xff));
    }
    frames.push_back(Frame{type, std::move(payload)});
  }
  return frames;
}

TEST(Transport, ByteAtATimeFeedDeliversEveryTypeIntact) {
  const std::vector<Frame> frames = every_type_frames();
  std::string wire;
  for (const Frame& frame : frames) wire += encode_frame(frame);
  FrameDecoder decoder;
  std::vector<Frame> seen;
  for (const char c : wire) {
    decoder.feed(&c, 1);
    while (const std::optional<Frame> frame = decoder.next()) {
      seen.push_back(*frame);
    }
  }
  EXPECT_EQ(seen, frames);
  EXPECT_TRUE(decoder.idle());
}

TEST(Transport, RandomChunkScheduleNeverChangesTheDecodedStream) {
  // 64 seeds x (frames in random order, fed in random-sized chunks): the
  // decoded stream must equal the input stream bit for bit, every time. Any
  // buffer-boundary bug in the decoder shows up as a seed number to replay.
  const std::vector<Frame> base = every_type_frames();
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    SplitMix rng(seed);
    std::vector<Frame> frames;
    for (std::size_t i = 0; i < 16; ++i) {
      frames.push_back(base[rng.next() % base.size()]);
    }
    std::string wire;
    for (const Frame& frame : frames) wire += encode_frame(frame);
    FrameDecoder decoder;
    std::vector<Frame> seen;
    std::size_t offset = 0;
    while (offset < wire.size()) {
      // Chunk sizes biased small (1–32) with occasional large gulps, so both
      // header splits and payload splits get exercised.
      std::size_t chunk = 1 + rng.next() % 32;
      if (rng.next() % 8 == 0) chunk = 1 + rng.next() % 4096;
      chunk = std::min(chunk, wire.size() - offset);
      decoder.feed(wire.data() + offset, chunk);
      offset += chunk;
      while (const std::optional<Frame> frame = decoder.next()) {
        seen.push_back(*frame);
      }
    }
    ASSERT_EQ(seen, frames) << "seed " << seed;
    ASSERT_TRUE(decoder.idle()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wb::fleet
