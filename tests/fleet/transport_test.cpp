// The frame layer's contract: encode∘decode is the identity, arbitrary
// chunking never matters, and malformed input — truncated, oversized, or
// garbage length prefixes included — is rejected with a diagnostic, never a
// hang, an unbounded allocation, or a crash. These rejection cases sit
// alongside the shard layer's v2 document rejections (tests/wb/shard_test.cpp)
// because the fleet moves exactly those documents inside these frames.
#include "src/fleet/transport.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/support/check.h"

namespace wb::fleet {
namespace {

std::optional<Frame> decode_all(const std::string& wire) {
  FrameDecoder decoder;
  decoder.feed(wire);
  return decoder.next();
}

TEST(Transport, EncodeDecodeRoundTripsEveryType) {
  for (const FrameType type :
       {FrameType::kHello, FrameType::kSpec, FrameType::kResult,
        FrameType::kHeartbeat, FrameType::kShutdown, FrameType::kError}) {
    const Frame frame{type, "payload for " + std::string(to_string(type))};
    const std::optional<Frame> decoded = decode_all(encode_frame(frame));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, frame);
  }
}

TEST(Transport, WireFormIsTheDocumentedHeaderLine) {
  EXPECT_EQ(encode_frame(Frame{FrameType::kSpec, "abc"}),
            "wbframe v1 spec 3\nabc");
  EXPECT_EQ(encode_frame(Frame{FrameType::kHeartbeat, ""}),
            "wbframe v1 heartbeat 0\n");
}

TEST(Transport, EmptyPayloadAndBinaryPayloadSurvive) {
  const Frame empty{FrameType::kShutdown, ""};
  EXPECT_EQ(decode_all(encode_frame(empty)), empty);

  const std::string binary("with\nnewlines\0and nul bytes", 27);
  const Frame frame{FrameType::kResult, binary};
  EXPECT_EQ(decode_all(encode_frame(frame)), frame);
}

TEST(Transport, DecoderIsIncremental_ByteAtATime) {
  const Frame a{FrameType::kSpec, "first document"};
  const Frame b{FrameType::kResult, "second document"};
  const std::string wire = encode_frame(a) + encode_frame(b);
  FrameDecoder decoder;
  std::vector<Frame> seen;
  for (const char c : wire) {
    decoder.feed(&c, 1);
    while (const std::optional<Frame> frame = decoder.next()) {
      seen.push_back(*frame);
    }
  }
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], a);
  EXPECT_EQ(seen[1], b);
  EXPECT_TRUE(decoder.idle());
}

TEST(Transport, PartialFrameReportsNotIdle) {
  FrameDecoder decoder;
  decoder.feed("wbframe v1 spec 10\nhalf");
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_FALSE(decoder.idle());  // EOF here would be a mid-frame death
}

// --- rejection: every way a length-prefixed stream can lie ------------------

void expect_rejected(const std::string& wire, const char* needle) {
  FrameDecoder decoder;
  decoder.feed(wire);
  try {
    (void)decoder.next();
    FAIL() << "accepted: " << wire.substr(0, 60);
  } catch (const DataError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic '" << e.what() << "' should mention '" << needle << "'";
  }
}

TEST(Transport, RejectsBadMagic) {
  expect_rejected("wbfraME v1 spec 3\nabc", "magic");
  expect_rejected("GET / HTTP/1.1\r\n\r\n", "magic");
  expect_rejected(std::string("\x00\x01\x02\x03garbage\n", 12), "magic");
}

TEST(Transport, RejectsVersionSkew) {
  expect_rejected("wbframe v2 spec 3\nabc", "version");
  expect_rejected("wbframe  spec 3\nabc", "version");
}

TEST(Transport, RejectsUnknownType) {
  expect_rejected("wbframe v1 gossip 3\nabc", "frame type");
  expect_rejected("wbframe v1  3\nabc", "frame type");
}

TEST(Transport, RejectsGarbageLengthPrefixes) {
  expect_rejected("wbframe v1 spec x\n", "length");
  expect_rejected("wbframe v1 spec -1\n", "length");
  expect_rejected("wbframe v1 spec 3abc\n", "length");
  expect_rejected("wbframe v1 spec\n", "length");
  expect_rejected("wbframe v1 spec 1 2\n", "length");
}

TEST(Transport, RejectsOversizedLengthWithoutAllocating) {
  // A hostile length must be rejected from the header alone — the payload
  // cap guards the allocation, not an OOM.
  expect_rejected("wbframe v1 spec 99999999999999999999\n", "length");
  expect_rejected(
      "wbframe v1 spec " + std::to_string(kMaxFramePayload + 1) + "\n", "cap");
}

TEST(Transport, RejectsUnterminatedHeaderBeforeBufferingForever) {
  // A stream that never sends '\n' must fail at the header bound, not
  // buffer unboundedly.
  FrameDecoder decoder;
  decoder.feed(std::string(kMaxHeaderBytes + 1, 'a'));
  EXPECT_THROW((void)decoder.next(), DataError);
}

TEST(Transport, RejectsOverlongHeaderLineEvenWithNewline) {
  expect_rejected("wbframe v1 spec " + std::string(60, '0') + "\n", "bound");
}

TEST(Transport, PoisonedDecoderStaysPoisoned) {
  FrameDecoder decoder;
  decoder.feed("wbframe v1 bogus 0\n");
  EXPECT_THROW((void)decoder.next(), DataError);
  // Feeding perfectly valid bytes cannot resynchronize a framing error.
  decoder.feed(encode_frame(Frame{FrameType::kHello, ""}));
  EXPECT_THROW((void)decoder.next(), DataError);
  EXPECT_FALSE(decoder.idle());
}

TEST(Transport, FrameTypeTokensRoundTrip) {
  for (const char* token :
       {"hello", "spec", "result", "heartbeat", "shutdown", "error"}) {
    EXPECT_EQ(to_string(frame_type_from_string(token)), token);
  }
  EXPECT_THROW((void)frame_type_from_string("HELLO"), DataError);
  EXPECT_THROW((void)frame_type_from_string(""), DataError);
}

}  // namespace
}  // namespace wb::fleet
