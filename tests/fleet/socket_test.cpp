// The TCP layer under the fleet: address parsing (the --listen/--connect
// grammar), the listener's ephemeral-port contract, and a loopback frame
// round trip — the plumbing the controller's remote-worker tests
// (controller_test.cpp) build their fault injection on.
#include "src/fleet/socket.h"

#if WB_FLEET_HAS_PROCESSES

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>

#include "src/support/check.h"

namespace wb::fleet {
namespace {

TEST(SocketAddressParse, HostPortForms) {
  EXPECT_EQ(parse_socket_address("127.0.0.1:9000"),
            (SocketAddress{"127.0.0.1", 9000}));
  EXPECT_EQ(parse_socket_address("localhost:0"), (SocketAddress{"localhost", 0}));
  // rfind(':') keeps colons inside the host part (IPv6-ish forms).
  EXPECT_EQ(parse_socket_address("::1:8080"), (SocketAddress{"::1", 8080}));
  EXPECT_EQ(to_string(SocketAddress{"node7", 12}), "node7:12");
}

TEST(SocketAddressParse, RejectsGarbage) {
  EXPECT_THROW((void)parse_socket_address("no-port-here"), DataError);
  EXPECT_THROW((void)parse_socket_address("host:"), DataError);
  EXPECT_THROW((void)parse_socket_address(":123"), DataError);
  EXPECT_THROW((void)parse_socket_address("host:notaport"), DataError);
  EXPECT_THROW((void)parse_socket_address("host:70000"), DataError);
  EXPECT_THROW((void)parse_socket_address("host:-1"), DataError);
  EXPECT_THROW((void)parse_socket_address("host:12 "), DataError);
}

TEST(SocketAddressParse, CommaSeparatedLists) {
  const std::vector<SocketAddress> list =
      parse_socket_address_list("a:1,b:2,c:3");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], (SocketAddress{"a", 1}));
  EXPECT_EQ(list[2], (SocketAddress{"c", 3}));
  EXPECT_EQ(parse_socket_address_list("solo:9").size(), 1u);
  EXPECT_THROW((void)parse_socket_address_list("a:1,,b:2"), DataError);
}

TEST(SocketListener, EphemeralPortIsReportedAndDialable) {
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  EXPECT_GT(listener.bound_address().port, 0);  // the kernel's pick, not 0
  EXPECT_GE(listener.fd(), 0);

  const int client = dial(listener.bound_address());
  ASSERT_GE(client, 0);
  std::string peer;
  const int accepted = listener.accept_connection(&peer);
  ASSERT_GE(accepted, 0);
  EXPECT_NE(peer.find("127.0.0.1"), std::string::npos) << peer;

  // Frames survive the socket in both directions (the accepted side is
  // non-blocking — exactly what read_frame/write_frame are built for).
  const Frame ping{FrameType::kSpec, "over the wire"};
  write_frame(client, ping);
  FrameDecoder decoder;
  const std::optional<Frame> got = read_frame(accepted, decoder);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, ping);

  const Frame pong{FrameType::kAck, {}};
  write_frame(accepted, pong);
  FrameDecoder client_decoder;
  const std::optional<Frame> back = read_frame(client, client_decoder);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pong);

  ::close(client);
  ::close(accepted);
}

TEST(SocketListener, PeerDisconnectIsEofNotAnError) {
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  const int client = dial(listener.bound_address());
  const int accepted = listener.accept_connection();
  ASSERT_GE(accepted, 0);
  ::close(client);
  FrameDecoder decoder;
  EXPECT_EQ(read_frame(accepted, decoder), std::nullopt);  // clean EOF
  ::close(accepted);
}

TEST(SocketListener, MidFrameDisconnectIsAStreamError) {
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  const int client = dial(listener.bound_address());
  const int accepted = listener.accept_connection();
  ASSERT_GE(accepted, 0);
  // Half a header, then gone: the reader must say *stream* death, which the
  // worker maps to "redial", not "abandon".
  ASSERT_EQ(::write(client, "wbframe v1 spe", 14), 14);
  ::close(client);
  FrameDecoder decoder;
  EXPECT_THROW((void)read_frame(accepted, decoder), StreamError);
  ::close(accepted);
}

TEST(SocketListener, CloseIsIdempotentAndStopsAccepts) {
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  listener.close();
  listener.close();
  EXPECT_EQ(listener.fd(), -1);
  EXPECT_THROW((void)listener.accept_connection(), DataError);
}

TEST(SocketDial, RefusedConnectionIsADataError) {
  // Bind-then-close frees a port that (very likely) refuses immediately.
  std::uint16_t port = 0;
  {
    SocketListener listener(SocketAddress{"127.0.0.1", 0});
    port = listener.bound_address().port;
  }
  EXPECT_THROW((void)dial(SocketAddress{"127.0.0.1", port}), DataError);
}

TEST(RunWorkerConnect, RedialLimitGivesUpWithExitCode1) {
  std::uint16_t dead_port = 0;
  {
    SocketListener listener(SocketAddress{"127.0.0.1", 0});
    dead_port = listener.bound_address().port;
  }
  ConnectOptions connect;
  connect.addresses = {SocketAddress{"127.0.0.1", dead_port}};
  connect.redial_base = std::chrono::milliseconds(1);
  connect.redial_max = std::chrono::milliseconds(2);
  connect.redial_limit = 3;
  const int rc = run_worker_connect(
      connect, [](const shard::ShardSpec&, std::size_t) -> shard::ShardResult {
        throw LogicError("runner must never be reached without a connection");
      });
  EXPECT_EQ(rc, 1);
}

}  // namespace
}  // namespace wb::fleet

#endif  // WB_FLEET_HAS_PROCESSES
