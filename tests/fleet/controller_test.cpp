// Fault injection for the fleet controller: every failure mode of the
// asynchronous-crash model — SIGKILL mid-shard, a worker that never
// heartbeats, duplicate/stale results after a re-issue, foreign results,
// malformed frames, poisoned shards — must leave the merged report
// bit-identical to the no-fault reference (and therefore, by the PR 4/5
// shard pins, to the `exhaustive:1` serial oracle). Workers here are real
// forked processes running run_worker in-process (no exec), always with
// threads=1 so a forked child never touches the parent's thread pool.
#include "src/fleet/controller.h"

#if WB_FLEET_HAS_PROCESSES

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/cli/runners.h"
#include "src/cli/spec.h"
#include "src/fleet/socket.h"
#include "src/fleet/worker.h"
#include "src/support/check.h"
#include "src/wb/shard.h"

namespace wb::fleet {
namespace {

using std::chrono::milliseconds;

shard::ShardResult serial_runner(const shard::ShardSpec& spec,
                                 std::size_t /*threads*/) {
  return cli::run_protocol_spec_shard(spec, 1);
}

PlanInputs make_plan(const std::string& name, const std::string& graph_spec,
                     const std::string& protocol, std::size_t shards,
                     const DistinctConfig& distinct = {}) {
  const Graph g = cli::graph_from_spec(graph_spec);
  shard::PlanOptions opts;
  opts.distinct = distinct;
  const auto specs =
      cli::plan_protocol_spec_shards(protocol, g, shards, opts);
  PlanInputs plan;
  plan.name = name;
  plan.manifest = shard::make_manifest(specs);
  for (const shard::ShardSpec& spec : specs) {
    plan.spec_documents.push_back(shard::serialize(spec));
  }
  return plan;
}

/// The no-fault reference: sweep every spec document serially in-process and
/// merge. PR 4's tests pin this against the `exhaustive:1` oracle, so
/// equality here is transitively oracle equality.
shard::MergedResult reference_merge(const PlanInputs& plan) {
  std::vector<shard::ShardResult> results;
  for (const std::string& doc : plan.spec_documents) {
    results.push_back(serial_runner(shard::parse_shard_spec(doc), 1));
  }
  return shard::merge_shard_results(results);
}

void expect_same_merge(const shard::MergedResult& got,
                       const shard::MergedResult& want) {
  EXPECT_EQ(got.shard_count, want.shard_count);
  EXPECT_EQ(got.executions, want.executions);
  EXPECT_EQ(got.engine_failures, want.engine_failures);
  EXPECT_EQ(got.wrong_outputs, want.wrong_outputs);
  EXPECT_EQ(got.distinct_boards, want.distinct_boards);
  EXPECT_EQ(got.distinct, want.distinct);
}

/// Fork a child that serves frames with run_worker (in-process, no exec).
WorkerEndpoint fork_worker(const WorkerOptions& options = {}) {
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  WB_REQUIRE_MSG(::pipe(to_child) == 0 && ::pipe(from_child) == 0,
                 "pipe failed");
  const pid_t pid = ::fork();
  WB_REQUIRE_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::_exit(run_worker(to_child[0], from_child[1], serial_runner, options));
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  return WorkerEndpoint{pid, to_child[1], from_child[0]};
}

/// Fork a child that speaks raw frames according to `behave` (for byzantine
/// behaviors run_worker would never produce). behave(in_fd, out_fd) runs in
/// the child.
template <typename Behave>
WorkerEndpoint fork_raw(const Behave& behave) {
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  WB_REQUIRE_MSG(::pipe(to_child) == 0 && ::pipe(from_child) == 0,
                 "pipe failed");
  const pid_t pid = ::fork();
  WB_REQUIRE_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    ::close(to_child[1]);
    ::close(from_child[0]);
    ignore_sigpipe();
    behave(to_child[0], from_child[1]);
    ::_exit(0);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  return WorkerEndpoint{pid, to_child[1], from_child[0]};
}

WorkerLauncher plain_launcher(const WorkerOptions& options = {}) {
  return [options](std::size_t) { return fork_worker(options); };
}

// --- the happy path, as a baseline ------------------------------------------

TEST(FleetController, NoFaultSweepMatchesTheSerialReference) {
  const PlanInputs plan = make_plan("clean", "twocliques:3", "two-cliques", 3);
  FleetOptions options;
  options.workers = 3;
  const auto outcomes = run_fleet({plan}, options, plain_launcher());
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  EXPECT_FALSE(outcomes[0].budget_exceeded);
  EXPECT_EQ(outcomes[0].reissues, 0u);
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
}

TEST(FleetController, OneResidentFleetServesSeveralPlansConcurrently) {
  // Three heterogeneous plans — exact, failing-protocol, and hll — on two
  // workers in one run_fleet call; every merged report must match its own
  // serial reference (workers are plan-agnostic: the spec documents are
  // self-describing).
  const std::vector<PlanInputs> plans = {
      make_plan("clean", "twocliques:3", "two-cliques", 3),
      make_plan("failing", "path:4", "broken-first:1", 2),
      make_plan("sketched", "twocliques:3", "two-cliques", 2,
                DistinctConfig::Hll(12)),
  };
  FleetOptions options;
  options.workers = 2;
  const auto outcomes = run_fleet(plans, options, plain_launcher());
  ASSERT_EQ(outcomes.size(), 3u);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    ASSERT_TRUE(outcomes[i].completed) << outcomes[i].error;
    expect_same_merge(outcomes[i].merged, reference_merge(plans[i]));
  }
  // The failing protocol's wrong outputs must be counted, not lost.
  EXPECT_GT(outcomes[1].merged.wrong_outputs, 0u);
}

// --- crash faults ------------------------------------------------------------

class KillOneWorkerMidShard : public ::testing::TestWithParam<DistinctConfig> {
};

TEST_P(KillOneWorkerMidShard, SweepStillMatchesTheSerialReference) {
  // The ISSUE's success bar: kill -9 a worker while it provably holds a
  // shard (stall_first keeps it mid-service); the sweep must complete and
  // merge bit-identically, for the exact and the hll accumulator alike.
  const PlanInputs plan =
      make_plan("kill9", "twocliques:3", "two-cliques", 4, GetParam());
  WorkerOptions stalling;
  stalling.stall_first = milliseconds(400);
  std::vector<pid_t> pids;
  bool killed = false;
  std::string lost_reason;
  FleetObserver observer;
  observer.on_spawn = [&](std::size_t, pid_t pid) { pids.push_back(pid); };
  observer.on_dispatch = [&](std::size_t worker, const std::string&,
                             std::uint32_t, int) {
    if (!killed) {
      killed = true;
      ::kill(pids.at(worker), SIGKILL);
    }
  };
  observer.on_worker_lost = [&](std::size_t, const std::string& why) {
    lost_reason = why;
  };
  FleetOptions options;
  options.workers = 2;
  options.backoff_base = milliseconds(10);
  const auto outcomes = run_fleet(
      {plan}, options,
      [&](std::size_t) { return fork_worker(stalling); }, observer);
  ASSERT_TRUE(killed);
  EXPECT_NE(lost_reason, "");
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  EXPECT_GE(outcomes[0].reissues, 1u);
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
}

INSTANTIATE_TEST_SUITE_P(Accumulators, KillOneWorkerMidShard,
                         ::testing::Values(DistinctConfig::Exact(),
                                           DistinctConfig::Hll(14)));

TEST(FleetController, WorkerDeadAtDispatchGetsNoFurtherShardsThatPass) {
  // Worker 0's stdin read end is gone before the first dispatch, so the
  // dispatch write fails and the worker is lost mid-pass. With several
  // plans queued, the dispatch pass must stop offering that dead slot the
  // next plan's shard: its closed fd numbers are typically reused by the
  // respawned replacement's pipes, so a write on the stale entry would land
  // in the replacement's stdin, flip the dead entry back to busy, and later
  // double-close fds the replacement owns.
  const std::vector<PlanInputs> plans = {
      make_plan("first", "twocliques:3", "two-cliques", 2),
      make_plan("second", "path:4", "broken-first:1", 2),
  };
  std::vector<bool> lost;
  std::vector<std::string> dispatches_after_loss;
  FleetObserver observer;
  observer.on_worker_lost = [&](std::size_t worker, const std::string&) {
    if (lost.size() <= worker) lost.resize(worker + 1, false);
    lost[worker] = true;
  };
  observer.on_dispatch = [&](std::size_t worker, const std::string& plan,
                             std::uint32_t shard, int) {
    if (worker < lost.size() && lost[worker]) {
      dispatches_after_loss.push_back(plan + " shard " +
                                      std::to_string(shard) + " -> worker " +
                                      std::to_string(worker));
    }
  };
  FleetOptions options;
  options.workers = 1;
  options.backoff_base = milliseconds(10);
  std::size_t spawned = 0;
  const WorkerLauncher launcher = [&](std::size_t) {
    if (spawned++ == 0) {
      WorkerEndpoint trap = fork_raw([](int in_fd, int out_fd) {
        ::close(in_fd);
        write_frame(out_fd, Frame{FrameType::kHello, ""});
        std::this_thread::sleep_for(std::chrono::seconds(60));
      });
      // The hello is written only after the child closed its stdin end, so
      // consuming it here guarantees the controller's dispatch write fails
      // deterministically (EPIPE), not racily.
      FrameDecoder sync;
      (void)read_frame(trap.from_worker_fd, sync);
      return trap;
    }
    return fork_worker();
  };
  const auto outcomes = run_fleet(plans, options, launcher, observer);
  EXPECT_TRUE(dispatches_after_loss.empty())
      << "a lost worker slot was re-dispatched: "
      << dispatches_after_loss.front();
  ASSERT_EQ(outcomes.size(), 2u);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    ASSERT_TRUE(outcomes[i].completed) << outcomes[i].error;
    expect_same_merge(outcomes[i].merged, reference_merge(plans[i]));
  }
}

TEST(FleetController, NeverHeartbeatingWorkerIsSuspectedAndItsShardReissued) {
  // Worker 0 reads its spec and goes silent forever (no heartbeats, no
  // result) — indistinguishable from a dead one. The controller must
  // suspect it, re-issue the shard elsewhere, and still finish with the
  // reference totals.
  const PlanInputs plan = make_plan("silence", "twocliques:3", "two-cliques", 2);
  std::vector<std::string> requeue_reasons;
  FleetObserver observer;
  observer.on_requeue = [&](const std::string&, std::uint32_t,
                            const std::string& why) {
    requeue_reasons.push_back(why);
  };
  FleetOptions options;
  options.workers = 2;
  options.heartbeat_timeout = milliseconds(150);
  options.backoff_base = milliseconds(10);
  std::size_t spawned = 0;
  const WorkerLauncher launcher = [&](std::size_t) {
    if (spawned++ == 0) {
      // The trap: hello, swallow one spec, sleep "forever".
      return fork_raw([](int in_fd, int out_fd) {
        write_frame(out_fd, Frame{FrameType::kHello, ""});
        FrameDecoder decoder;
        (void)read_frame(in_fd, decoder);
        std::this_thread::sleep_for(std::chrono::seconds(60));
      });
    }
    return fork_worker();
  };
  const auto outcomes = run_fleet({plan}, options, launcher, observer);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  EXPECT_GE(outcomes[0].reissues, 1u);
  ASSERT_FALSE(requeue_reasons.empty());
  EXPECT_NE(requeue_reasons[0].find("heartbeat"), std::string::npos)
      << requeue_reasons[0];
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
}

TEST(FleetController, StaleDuplicateResultAfterCompletionIsDiscarded) {
  // A worker delivers its shard's result twice — the second copy models the
  // original holder of a re-issued shard answering after the re-run already
  // merged. First valid result wins; the duplicate is discarded as stale
  // and the totals cannot double-count.
  const PlanInputs plan = make_plan("stale", "twocliques:3", "two-cliques", 2);
  std::vector<std::string> discard_reasons;
  FleetObserver observer;
  observer.on_discard = [&](std::size_t, const std::string& why) {
    discard_reasons.push_back(why);
  };
  FleetOptions options;
  options.workers = 1;  // one worker serves both shards back to back
  const WorkerLauncher launcher = [](std::size_t) {
    return fork_raw([](int in_fd, int out_fd) {
      FrameDecoder decoder;
      write_frame(out_fd, Frame{FrameType::kHello, ""});
      while (const std::optional<Frame> frame = read_frame(in_fd, decoder)) {
        if (frame->type == FrameType::kAck) continue;
        if (frame->type != FrameType::kSpec) return;
        const shard::ShardResult result =
            serial_runner(shard::parse_shard_spec(frame->payload), 1);
        const std::string doc = shard::serialize(result);
        write_frame(out_fd, Frame{FrameType::kResult, doc});
        write_frame(out_fd, Frame{FrameType::kResult, doc});  // the stale twin
      }
    });
  };
  const auto outcomes = run_fleet({plan}, options, launcher, observer);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  ASSERT_FALSE(discard_reasons.empty());
  EXPECT_NE(discard_reasons[0].find("stale"), std::string::npos)
      << discard_reasons[0];
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
}

TEST(FleetController, ForeignResultIsDiscardedAndTheShardRetried) {
  // Worker 0 answers its first spec with a result from a *different* plan.
  // The plan-fingerprint guard must discard it (never merge it) and retry
  // the shard; the worker behaves afterwards, so the sweep completes.
  const PlanInputs plan = make_plan("served", "twocliques:3", "two-cliques", 2);
  const PlanInputs other = make_plan("other", "path:4", "broken-first:1", 1);
  const std::string foreign_doc = shard::serialize(
      serial_runner(shard::parse_shard_spec(other.spec_documents[0]), 1));
  std::vector<std::string> discard_reasons;
  FleetObserver observer;
  observer.on_discard = [&](std::size_t, const std::string& why) {
    discard_reasons.push_back(why);
  };
  FleetOptions options;
  options.workers = 1;
  options.backoff_base = milliseconds(10);
  const WorkerLauncher launcher = [&](std::size_t) {
    return fork_raw([&foreign_doc](int in_fd, int out_fd) {
      FrameDecoder decoder;
      write_frame(out_fd, Frame{FrameType::kHello, ""});
      bool lied = false;
      while (const std::optional<Frame> frame = read_frame(in_fd, decoder)) {
        if (frame->type == FrameType::kAck) continue;
        if (frame->type != FrameType::kSpec) return;
        if (!lied) {
          lied = true;
          write_frame(out_fd, Frame{FrameType::kResult, foreign_doc});
          continue;
        }
        const shard::ShardResult result =
            serial_runner(shard::parse_shard_spec(frame->payload), 1);
        write_frame(out_fd,
                    Frame{FrameType::kResult, shard::serialize(result)});
      }
    });
  };
  const auto outcomes = run_fleet({plan}, options, launcher, observer);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  EXPECT_GE(outcomes[0].reissues, 1u);
  ASSERT_FALSE(discard_reasons.empty());
  EXPECT_NE(discard_reasons[0].find("foreign"), std::string::npos)
      << discard_reasons[0];
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
}

TEST(FleetController, MalformedFramesKillTheWorkerAndTheFleetRecovers) {
  // A worker whose stream degenerates into garbage cannot be
  // resynchronized: the controller must kill it, respawn, and finish.
  const PlanInputs plan = make_plan("garbled", "twocliques:3", "two-cliques", 2);
  std::string lost_reason;
  FleetObserver observer;
  observer.on_worker_lost = [&](std::size_t, const std::string& why) {
    if (lost_reason.empty()) lost_reason = why;
  };
  FleetOptions options;
  options.workers = 1;
  options.backoff_base = milliseconds(10);
  std::size_t spawned = 0;
  const WorkerLauncher launcher = [&](std::size_t) {
    if (spawned++ == 0) {
      return fork_raw([](int in_fd, int out_fd) {
        write_frame(out_fd, Frame{FrameType::kHello, ""});
        FrameDecoder decoder;
        (void)read_frame(in_fd, decoder);  // wait for the spec
        const char garbage[] = "this is not a frame\n";
        (void)!::write(out_fd, garbage, sizeof garbage - 1);
        std::this_thread::sleep_for(std::chrono::seconds(60));
      });
    }
    return fork_worker();
  };
  const auto outcomes = run_fleet({plan}, options, launcher, observer);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  EXPECT_NE(lost_reason.find("malformed"), std::string::npos) << lost_reason;
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
}

// --- plan-level failures ------------------------------------------------------

TEST(FleetController, PoisonedShardFailsItsPlanButNotItsNeighbors) {
  // A spec whose protocol no worker can construct makes every attempt
  // answer with an error frame; after max_attempts the plan fails — while a
  // healthy plan served by the same fleet still completes.
  // A different graph than the healthy plan: the fingerprint is computed at
  // plan time, so tampering the protocol line below does not change it, and
  // two live plans may not share one.
  PlanInputs poisoned = make_plan("poisoned", "twocliques:4", "two-cliques", 2);
  {
    // Tamper the protocol line (opaque to the shard layer, fatal to the
    // runner), then rebuild a *consistent* manifest so the input guard
    // admits the plan and the failure happens in the workers.
    std::vector<shard::ShardSpec> specs;
    for (std::string& doc : poisoned.spec_documents) {
      shard::ShardSpec spec = shard::parse_shard_spec(doc);
      spec.protocol_spec = "no-such-protocol";
      doc = shard::serialize(spec);
      specs.push_back(std::move(spec));
    }
    poisoned.manifest = shard::make_manifest(specs);
  }
  const PlanInputs healthy = make_plan("healthy", "twocliques:3", "two-cliques", 2);
  FleetOptions options;
  options.workers = 2;
  options.max_attempts = 2;
  options.backoff_base = milliseconds(1);
  const auto outcomes =
      run_fleet({poisoned, healthy}, options, plain_launcher());
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].completed);
  EXPECT_NE(outcomes[0].error.find("attempts"), std::string::npos)
      << outcomes[0].error;
  ASSERT_TRUE(outcomes[1].completed) << outcomes[1].error;
  expect_same_merge(outcomes[1].merged, reference_merge(healthy));
}

TEST(FleetController, DuplicateFingerprintPlansAreRefusedUpFront) {
  // Results are attributed by fingerprint, so two live plans sharing one
  // would be indistinguishable on the wire; the controller refuses the
  // ambiguity before spawning anything.
  const PlanInputs a = make_plan("a", "twocliques:3", "two-cliques", 2);
  PlanInputs b = a;
  b.name = "b";
  FleetOptions options;
  options.workers = 1;
  EXPECT_THROW((void)run_fleet({a, b}, options, plain_launcher()), DataError);
}

TEST(FleetController, SwappedSpecDocumentIsRefusedUpFront) {
  // A spec document whose hash contradicts the manifest must be rejected
  // before any worker is spawned — not discovered after a sweep.
  PlanInputs plan = make_plan("swapped", "twocliques:3", "two-cliques", 2);
  std::swap(plan.spec_documents[0], plan.spec_documents[1]);
  FleetOptions options;
  options.workers = 1;
  EXPECT_THROW((void)run_fleet({plan}, options, plain_launcher()), DataError);
}

TEST(FleetController, BudgetExceededSurfacesLikeTheSerialOracle) {
  // A plan whose schedule space exceeds its budget must report
  // budget_exceeded — the flag the CLI turns into the oracle's
  // BudgetExceededError behavior — not silently truncated totals.
  const Graph g = cli::graph_from_spec("twocliques:3");
  shard::PlanOptions popts;
  popts.max_executions = 100;  // 6! = 720 schedules >> 100
  const auto specs =
      cli::plan_protocol_spec_shards("two-cliques", g, 2, popts);
  PlanInputs plan;
  plan.name = "overbudget";
  plan.manifest = shard::make_manifest(specs);
  for (const shard::ShardSpec& spec : specs) {
    plan.spec_documents.push_back(shard::serialize(spec));
  }
  FleetOptions options;
  options.workers = 2;
  const auto outcomes = run_fleet({plan}, options, plain_launcher());
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  EXPECT_TRUE(outcomes[0].budget_exceeded);
}

// --- the worker loop, driven in-process --------------------------------------

TEST(FleetWorker, ServesSpecsThenShutsDownCleanly) {
  const PlanInputs plan = make_plan("direct", "twocliques:3", "two-cliques", 1);
  int to_worker[2] = {-1, -1};
  int from_worker[2] = {-1, -1};
  ASSERT_EQ(::pipe(to_worker), 0);
  ASSERT_EQ(::pipe(from_worker), 0);
  std::thread worker([&] {
    (void)run_worker(to_worker[0], from_worker[1], serial_runner);
    ::close(from_worker[1]);
  });
  write_frame(to_worker[1], Frame{FrameType::kSpec, plan.spec_documents[0]});
  write_frame(to_worker[1], Frame{FrameType::kShutdown, ""});
  FrameDecoder decoder;
  std::optional<Frame> hello = read_frame(from_worker[0], decoder);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->type, FrameType::kHello);
  // Heartbeats may precede the result; skip them.
  std::optional<Frame> frame;
  do {
    frame = read_frame(from_worker[0], decoder);
    ASSERT_TRUE(frame.has_value());
  } while (frame->type == FrameType::kHeartbeat);
  EXPECT_EQ(frame->type, FrameType::kResult);
  const shard::ShardResult result = shard::parse_shard_result(frame->payload);
  EXPECT_EQ(result.plan, plan.manifest.plan);
  worker.join();
  ::close(to_worker[1]);
  ::close(to_worker[0]);
  ::close(from_worker[0]);
}

TEST(FleetWorker, UnsweepableSpecAnswersWithAnErrorFrameAndLivesOn) {
  int to_worker[2] = {-1, -1};
  int from_worker[2] = {-1, -1};
  ASSERT_EQ(::pipe(to_worker), 0);
  ASSERT_EQ(::pipe(from_worker), 0);
  int exit_code = -1;
  std::thread worker([&] {
    exit_code = run_worker(to_worker[0], from_worker[1], serial_runner);
    ::close(from_worker[1]);
  });
  write_frame(to_worker[1], Frame{FrameType::kSpec, "not a shard spec"});
  write_frame(to_worker[1], Frame{FrameType::kShutdown, ""});
  FrameDecoder decoder;
  std::optional<Frame> frame = read_frame(from_worker[0], decoder);  // hello
  ASSERT_TRUE(frame.has_value());
  do {
    frame = read_frame(from_worker[0], decoder);
    ASSERT_TRUE(frame.has_value());
  } while (frame->type == FrameType::kHeartbeat);
  EXPECT_EQ(frame->type, FrameType::kError);
  EXPECT_FALSE(frame->payload.empty());
  worker.join();
  EXPECT_EQ(exit_code, 0);  // one poisoned shard does not cost a worker
  ::close(to_worker[1]);
  ::close(to_worker[0]);
  ::close(from_worker[0]);
}

// --- the socket fleet: remote workers over real loopback connections --------
//
// These children are real processes dialing a real listener; every fault is
// injected on an actual TCP link (SIGKILL, shutdown(2), silence), and every
// sweep must still merge bit-identically to the serial reference.

/// Fork a child running the long-lived dial-in loop (wbsim fleet worker
/// --connect). The child closes the inherited listener fd first so a
/// dangling child can never keep the port alive past the controller.
pid_t fork_connect_worker(const SocketListener& listener,
                          const WorkerOptions& options = {}) {
  const SocketAddress address = listener.bound_address();
  const int listener_fd = listener.fd();
  const pid_t pid = ::fork();
  WB_REQUIRE_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    ::close(listener_fd);
    ConnectOptions connect;
    connect.addresses = {address};
    connect.redial_base = milliseconds(50);
    connect.redial_max = milliseconds(500);
    connect.redial_limit = 40;  // bounded so a test bug cannot hang the suite
    ::_exit(run_worker_connect(connect, serial_runner, options));
  }
  return pid;
}

/// Fork a raw TCP client: dial and run `behave(fd)` (byzantine or
/// half-broken remotes run_worker_connect would never produce).
template <typename Behave>
pid_t fork_raw_dialer(const SocketListener& listener, const Behave& behave) {
  const SocketAddress address = listener.bound_address();
  const int listener_fd = listener.fd();
  const pid_t pid = ::fork();
  WB_REQUIRE_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    ::close(listener_fd);
    ignore_sigpipe();
    behave(dial(address));
    ::_exit(0);
  }
  return pid;
}

/// Wait for `pid`; returns its exit code, or -signal when killed.
int reap(pid_t pid) {
  int status = 0;
  WB_REQUIRE_MSG(::waitpid(pid, &status, 0) == pid, "waitpid failed");
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return WIFSIGNALED(status) ? -WTERMSIG(status) : -1;
}

std::string hello_v2(const std::string& host, std::int64_t heartbeat_ms) {
  HelloInfo info;
  info.version = kHelloVersion;
  info.host = host;
  info.pid = ::getpid();
  info.threads = 1;
  info.heartbeat_ms = heartbeat_ms;
  return serialize_hello(info);
}

TEST(SocketFleet, DialInWorkersServeAnAllRemoteSweep) {
  // workers=0, no launcher: the fleet starts with nobody and *waits* — the
  // two dial-ins are its entire workforce. This is also the partition
  // half of the tolerance story: zero connected workers is not failure
  // while the listener is up.
  const PlanInputs plan = make_plan("remote", "twocliques:3", "two-cliques", 4);
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  std::vector<std::string> admitted_hosts;
  bool any_reconnect = false;
  FleetObserver observer;
  observer.on_admit = [&](std::size_t, const HelloInfo& hello,
                          bool reconnected) {
    admitted_hosts.push_back(hello.host);
    any_reconnect = any_reconnect || reconnected;
  };
  WorkerOptions alpha;
  alpha.hostname = "alpha";
  WorkerOptions beta;
  beta.hostname = "beta";
  const pid_t pid_a = fork_connect_worker(listener, alpha);
  const pid_t pid_b = fork_connect_worker(listener, beta);
  FleetOptions options;
  options.workers = 0;
  options.drain_grace = milliseconds(200);
  const auto outcomes =
      run_fleet({plan}, options, WorkerLauncher{}, observer, &listener);
  EXPECT_EQ(reap(pid_a), 0);
  EXPECT_EQ(reap(pid_b), 0);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
  ASSERT_EQ(admitted_hosts.size(), 2u);
  EXPECT_NE(std::count(admitted_hosts.begin(), admitted_hosts.end(), "alpha"),
            0);
  EXPECT_NE(std::count(admitted_hosts.begin(), admitted_hosts.end(), "beta"),
            0);
  EXPECT_FALSE(any_reconnect);
}

TEST(SocketFleet, SigkillRemoteMidShardShiftsLoadToTheSurvivor) {
  const PlanInputs plan = make_plan("kill9", "twocliques:3", "two-cliques", 4);
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  WorkerOptions victim;
  victim.hostname = "victim";
  victim.stall_first = milliseconds(400);  // provably mid-shard when killed
  WorkerOptions survivor;
  survivor.hostname = "survivor";
  const pid_t victim_pid = fork_connect_worker(listener, victim);
  const pid_t survivor_pid = fork_connect_worker(listener, survivor);
  std::size_t victim_index = SIZE_MAX;
  bool killed = false;
  std::string lost_reason;
  FleetObserver observer;
  observer.on_admit = [&](std::size_t worker, const HelloInfo& hello, bool) {
    if (hello.host == "victim") victim_index = worker;
  };
  observer.on_dispatch = [&](std::size_t worker, const std::string&,
                             std::uint32_t, int) {
    if (!killed && worker == victim_index) {
      killed = true;
      ::kill(victim_pid, SIGKILL);
    }
  };
  observer.on_worker_lost = [&](std::size_t worker, const std::string& why) {
    if (worker == victim_index) lost_reason = why;
  };
  FleetOptions options;
  options.workers = 0;
  options.backoff_base = milliseconds(10);
  options.drain_grace = milliseconds(100);
  const auto outcomes =
      run_fleet({plan}, options, WorkerLauncher{}, observer, &listener);
  EXPECT_EQ(reap(victim_pid), -SIGKILL);
  EXPECT_EQ(reap(survivor_pid), 0);
  ASSERT_TRUE(killed);
  EXPECT_NE(lost_reason, "");
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  EXPECT_GE(outcomes[0].reissues, 1u);
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
}

TEST(SocketFleet, RemoteLossSpendsNoRespawnBudget) {
  // Host-aware respawn policy: a mixed fleet (one local fork, one dial-in)
  // loses the remote — the controller must NOT burn a fork on it (dial-ins
  // are awaited, not forked); the local worker absorbs the load alone.
  const PlanInputs plan = make_plan("mixed", "twocliques:3", "two-cliques", 3);
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  WorkerOptions remote;
  remote.hostname = "remote";
  remote.stall_first = milliseconds(400);
  const pid_t remote_pid = fork_connect_worker(listener, remote);
  std::size_t remote_index = SIZE_MAX;
  std::size_t spawns = 0;
  bool killed = false;
  FleetObserver observer;
  observer.on_spawn = [&](std::size_t, pid_t) { ++spawns; };
  observer.on_admit = [&](std::size_t worker, const HelloInfo& hello, bool) {
    if (hello.host == "remote") remote_index = worker;
  };
  observer.on_dispatch = [&](std::size_t worker, const std::string&,
                             std::uint32_t, int) {
    if (!killed && worker == remote_index) {
      killed = true;
      ::kill(remote_pid, SIGKILL);
    }
  };
  FleetOptions options;
  options.workers = 1;
  options.backoff_base = milliseconds(10);
  options.drain_grace = milliseconds(100);
  const auto outcomes =
      run_fleet({plan}, options, plain_launcher(), observer, &listener);
  EXPECT_EQ(reap(remote_pid), -SIGKILL);
  ASSERT_TRUE(killed);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
  EXPECT_EQ(spawns, 1u) << "a remote loss must not trigger a local respawn";
}

TEST(SocketFleet, SeveredLinkWorkerRedialsAndRedeliversWithoutAReSweep) {
  // The partition-then-reconnect pin: the link is severed while the worker
  // is mid-sweep. The worker survives, redials, is recognized by its
  // host/pid identity, and REDELIVERS the finished result — inside the
  // drain grace, so the shard is never swept twice.
  const PlanInputs plan = make_plan("sever", "twocliques:3", "two-cliques", 1);
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  WorkerOptions worker;
  worker.hostname = "flaky";
  worker.stall_first = milliseconds(300);
  worker.sever_after = milliseconds(100);  // dies mid-stall, sweep continues
  const pid_t pid = fork_connect_worker(listener, worker);
  bool reconnected_seen = false;
  std::string lost_reason;
  FleetObserver observer;
  observer.on_admit = [&](std::size_t, const HelloInfo& hello,
                          bool reconnected) {
    EXPECT_EQ(hello.host, "flaky");
    reconnected_seen = reconnected_seen || reconnected;
  };
  observer.on_worker_lost = [&](std::size_t, const std::string& why) {
    lost_reason = why;
  };
  FleetOptions options;
  options.workers = 0;
  options.drain_grace = milliseconds(3000);  // ample room for the redelivery
  const auto outcomes =
      run_fleet({plan}, options, WorkerLauncher{}, observer, &listener);
  EXPECT_EQ(reap(pid), 0);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
  EXPECT_TRUE(reconnected_seen) << "the redial must be recognized, not "
                                   "admitted as a stranger";
  EXPECT_NE(lost_reason, "") << "the severed link must have been noticed";
  EXPECT_EQ(outcomes[0].reissues, 0u)
      << "the redelivery landed inside the drain grace; a re-sweep means "
         "drain semantics failed";
}

TEST(SocketFleet, HalfOpenConnectionIsSuspectedButTheLinkStaysOpen) {
  // A worker whose process lives but never speaks again (half-open link):
  // indistinguishable from a slow worker, so the controller may only
  // *suspect* it — re-issue its shard elsewhere, keep the link open. No
  // on_worker_lost, no respawn spent; the honest dial-in finishes the sweep.
  const PlanInputs plan = make_plan("halfopen", "twocliques:3", "two-cliques",
                                    2);
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  const pid_t silent_pid = fork_raw_dialer(listener, [](int fd) {
    write_frame(fd, Frame{FrameType::kHello, hello_v2("silent", 0)});
    FrameDecoder decoder;
    while (const std::optional<Frame> frame = read_frame(fd, decoder)) {
      if (frame->type == FrameType::kSpec) {
        ::usleep(60 * 1000 * 1000);  // the parent SIGKILLs us long before
      }
    }
  });
  WorkerOptions honest;
  honest.hostname = "honest";
  honest.heartbeat_interval = milliseconds(100);
  const pid_t honest_pid = fork_connect_worker(listener, honest);
  std::vector<std::string> lost;
  std::size_t requeues = 0;
  FleetObserver observer;
  observer.on_worker_lost = [&](std::size_t, const std::string& why) {
    lost.push_back(why);
  };
  observer.on_requeue = [&](const std::string&, std::uint32_t,
                            const std::string&) { ++requeues; };
  FleetOptions options;
  options.workers = 0;
  // Long enough that a loaded sanitizer build still lands both hellos inside
  // the handshake window; short enough that suspecting the silent worker
  // doesn't dominate the test.
  options.heartbeat_timeout = milliseconds(600);
  options.backoff_base = milliseconds(10);
  options.drain_grace = milliseconds(100);
  const auto outcomes =
      run_fleet({plan}, options, WorkerLauncher{}, observer, &listener);
  ::kill(silent_pid, SIGKILL);
  EXPECT_EQ(reap(silent_pid), -SIGKILL);
  EXPECT_EQ(reap(honest_pid), 0);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
  EXPECT_GE(requeues, 1u) << "the silent worker's shard must be re-issued";
  EXPECT_TRUE(lost.empty())
      << "silence is not death — the link must stay open (got: " << lost[0]
      << ")";
}

TEST(SocketFleet, MisconfiguredHeartbeatIsRefusedAtHandshake) {
  // Satellite 2: a worker whose heartbeat interval cannot satisfy the
  // controller's timeout would be suspected on every sweep. It is refused
  // at the handshake — error frame, worker exits 2 (no futile redials).
  const PlanInputs plan = make_plan("hb", "twocliques:3", "two-cliques", 1);
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  WorkerOptions bad;
  bad.hostname = "lazy";
  bad.heartbeat_interval = milliseconds(5000);  // >= the controller's timeout
  const pid_t bad_pid = fork_connect_worker(listener, bad);
  WorkerOptions good;
  good.hostname = "good";
  good.heartbeat_interval = milliseconds(100);
  const pid_t good_pid = fork_connect_worker(listener, good);
  std::vector<std::string> lost;
  std::vector<std::string> admitted;
  FleetObserver observer;
  observer.on_worker_lost = [&](std::size_t, const std::string& why) {
    lost.push_back(why);
  };
  observer.on_admit = [&](std::size_t, const HelloInfo& hello, bool) {
    admitted.push_back(hello.host);
  };
  FleetOptions options;
  options.workers = 0;
  // Generous: the timeout also bounds the hello handshake, and a sanitizer
  // build under load must not drop the bad worker for a *late* hello (the
  // refusal under test is the heartbeat mismatch, not handshake tardiness).
  options.heartbeat_timeout = milliseconds(1500);
  options.drain_grace = milliseconds(100);
  const auto outcomes =
      run_fleet({plan}, options, WorkerLauncher{}, observer, &listener);
  EXPECT_EQ(reap(bad_pid), 2) << "a refused worker must not redial";
  EXPECT_EQ(reap(good_pid), 0);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
  EXPECT_EQ(admitted, std::vector<std::string>{"good"});
  ASSERT_FALSE(lost.empty());
  EXPECT_NE(lost[0].find("heartbeat"), std::string::npos) << lost[0];
}

TEST(SocketFleet, VersionSkewedHelloIsRefusedAtHandshake) {
  // Satellite 1: a worker from a future protocol version is refused up
  // front with an error frame; the current-version worker serves the sweep.
  const PlanInputs plan = make_plan("skew", "twocliques:3", "two-cliques", 1);
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  const pid_t skewed_pid = fork_raw_dialer(listener, [](int fd) {
    write_frame(fd, Frame{FrameType::kHello,
                          "wbhello v3\nhost futurist\npid 1\n"});
    FrameDecoder decoder;
    // Drain until the controller hangs up; the error frame arrives first.
    bool saw_error = false;
    try {
      while (const std::optional<Frame> frame = read_frame(fd, decoder)) {
        saw_error = saw_error || frame->type == FrameType::kError;
      }
    } catch (const DataError&) {
    }
    ::_exit(saw_error ? 0 : 7);
  });
  WorkerOptions current;
  current.hostname = "current";
  const pid_t current_pid = fork_connect_worker(listener, current);
  std::vector<std::string> lost;
  FleetObserver observer;
  observer.on_worker_lost = [&](std::size_t, const std::string& why) {
    lost.push_back(why);
  };
  FleetOptions options;
  options.workers = 0;
  options.drain_grace = milliseconds(100);
  const auto outcomes =
      run_fleet({plan}, options, WorkerLauncher{}, observer, &listener);
  EXPECT_EQ(reap(skewed_pid), 0) << "the skewed worker must see the error "
                                    "frame explaining its refusal";
  EXPECT_EQ(reap(current_pid), 0);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
  ASSERT_FALSE(lost.empty());
  EXPECT_NE(lost[0].find("version"), std::string::npos) << lost[0];
}

TEST(SocketFleet, SlowTrickleFramesAreReassembledIntact) {
  // A congested link delivering a few bytes at a time (including mid-header
  // and mid-payload splits) must change nothing: the decoder reassembles,
  // the merge is bit-identical.
  const PlanInputs plan = make_plan("trickle", "twocliques:3", "two-cliques",
                                    2);
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  const pid_t pid = fork_raw_dialer(listener, [](int fd) {
    const auto trickle = [fd](const std::string& wire) {
      for (std::size_t i = 0; i < wire.size(); i += 7) {
        const std::size_t n = std::min<std::size_t>(7, wire.size() - i);
        std::size_t written = 0;
        while (written < n) {
          const ssize_t rc = ::write(fd, wire.data() + i + written,
                                     n - written);
          if (rc < 0 && (errno == EAGAIN || errno == EINTR)) continue;
          if (rc <= 0) ::_exit(7);
          written += static_cast<std::size_t>(rc);
        }
        ::usleep(200);
      }
    };
    trickle(encode_frame(
        Frame{FrameType::kHello, hello_v2("dripfeed", 0)}));
    FrameDecoder decoder;
    while (const std::optional<Frame> frame = read_frame(fd, decoder)) {
      if (frame->type == FrameType::kShutdown) ::_exit(0);
      if (frame->type != FrameType::kSpec) continue;
      const shard::ShardResult result =
          serial_runner(shard::parse_shard_spec(frame->payload), 1);
      trickle(encode_frame(Frame{FrameType::kResult,
                                 shard::serialize(result)}));
    }
  });
  FleetOptions options;
  options.workers = 0;
  options.heartbeat_timeout = milliseconds(10000);  // trickling is not death
  options.drain_grace = milliseconds(200);
  const auto outcomes =
      run_fleet({plan}, options, WorkerLauncher{}, {}, &listener);
  EXPECT_EQ(reap(pid), 0);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
}

/// The acceptance bar of the ISSUE: two dial-in workers, one SIGKILLed
/// mid-shard, the other's connection severed once (it redials and
/// redelivers); the merged report must stay bit-identical to the serial
/// reference for the exact and the hll accumulator alike.
class SocketFleetKillAndSever
    : public ::testing::TestWithParam<DistinctConfig> {};

TEST_P(SocketFleetKillAndSever, SweepStaysBitIdenticalToTheOracle) {
  const PlanInputs plan =
      make_plan("gauntlet", "twocliques:3", "two-cliques", 4, GetParam());
  SocketListener listener(SocketAddress{"127.0.0.1", 0});
  WorkerOptions victim;
  victim.hostname = "victim";
  victim.stall_first = milliseconds(400);
  WorkerOptions survivor;
  survivor.hostname = "survivor";
  survivor.stall_first = milliseconds(400);
  survivor.sever_after = milliseconds(200);
  const pid_t victim_pid = fork_connect_worker(listener, victim);
  const pid_t survivor_pid = fork_connect_worker(listener, survivor);
  std::size_t victim_index = SIZE_MAX;
  bool killed = false;
  bool reconnected_seen = false;
  FleetObserver observer;
  observer.on_admit = [&](std::size_t worker, const HelloInfo& hello,
                          bool reconnected) {
    if (hello.host == "victim") victim_index = worker;
    reconnected_seen = reconnected_seen || reconnected;
  };
  observer.on_dispatch = [&](std::size_t worker, const std::string&,
                             std::uint32_t, int) {
    if (!killed && worker == victim_index) {
      killed = true;
      ::kill(victim_pid, SIGKILL);
    }
  };
  FleetOptions options;
  options.workers = 0;
  options.backoff_base = milliseconds(10);
  options.drain_grace = milliseconds(300);
  const auto outcomes =
      run_fleet({plan}, options, WorkerLauncher{}, observer, &listener);
  EXPECT_EQ(reap(victim_pid), -SIGKILL);
  EXPECT_EQ(reap(survivor_pid), 0);
  ASSERT_TRUE(killed);
  EXPECT_TRUE(reconnected_seen);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_TRUE(outcomes[0].completed) << outcomes[0].error;
  expect_same_merge(outcomes[0].merged, reference_merge(plan));
}

INSTANTIATE_TEST_SUITE_P(Accumulators, SocketFleetKillAndSever,
                         ::testing::Values(DistinctConfig::Exact(),
                                           DistinctConfig::Hll(14)));

TEST(FleetWorker, MalformedControllerStreamExitsWithDataErrorCode) {
  int to_worker[2] = {-1, -1};
  int from_worker[2] = {-1, -1};
  ASSERT_EQ(::pipe(to_worker), 0);
  ASSERT_EQ(::pipe(from_worker), 0);
  int exit_code = -1;
  std::thread worker([&] {
    exit_code = run_worker(to_worker[0], from_worker[1], serial_runner);
    ::close(from_worker[1]);
  });
  const char garbage[] = "wbframe v9 nonsense\n";
  ASSERT_GT(::write(to_worker[1], garbage, sizeof garbage - 1), 0);
  ::close(to_worker[1]);
  worker.join();
  EXPECT_EQ(exit_code, 2);
  ::close(to_worker[0]);
  ::close(from_worker[0]);
}

}  // namespace
}  // namespace wb::fleet

#endif  // WB_FLEET_HAS_PROCESSES
