#include "src/protocols/bfs_sync.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

bool matches_reference(const Graph& g, const BfsProtocolOutput& out) {
  if (!out.valid) return false;
  const BfsForest ref = bfs_forest(g);
  return out.layer == ref.layer && out.roots == ref.roots &&
         is_valid_bfs_forest(g, out.layer, out.parent);
}

TEST(SyncBfs, ExhaustiveAllLabeledGraphsAllSchedulesN5) {
  // Theorem 10 at full strength for n ≤ 5: BFS on *arbitrary* graphs — odd
  // cycles, triangles, disconnected, everything — under every schedule.
  const SyncBfsProtocol p;
  for (std::size_t n = 1; n <= 5; ++n) {
    for_each_labeled_graph(n, [&](const Graph& g) {
      EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
        return matches_reference(g, p.output(r.board, n));
      })) << to_edge_list(g);
    });
  }
}

TEST(SyncBfs, ExhaustiveSelectedGraphsN6toN7) {
  const Graph graphs[] = {
      cycle_graph(7),            // odd cycle: the Cor 4 deadlock case, solved
      complete_graph(6),         // all intra-layer edges at layer 1
      complete_bipartite(3, 4),  // dense bipartite
      grid_graph(2, 3),
      two_cliques(3),            // disconnected with intra-layer edges
      star_graph(7),
  };
  const SyncBfsProtocol p;
  for (const Graph& g : graphs) {
    const std::size_t n = g.node_count();
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      return matches_reference(g, p.output(r.board, n));
    })) << to_edge_list(g);
  }
}

class SyncBfsRandomTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(SyncBfsRandomTest, ConnectedRandomGraphsUnderBattery) {
  const auto [n, seed] = GetParam();
  const Graph g = connected_gnp(n, 1, 5, seed);
  const SyncBfsProtocol p;
  for (auto& adv : standard_adversaries(g, seed)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name() << ": " << r.error;
    EXPECT_TRUE(matches_reference(g, p.output(r.board, n))) << adv->name();
  }
}

TEST_P(SyncBfsRandomTest, SparseDisconnectedGraphsUnderBattery) {
  const auto [n, seed] = GetParam();
  const Graph g = erdos_renyi(n, 1, n, seed);  // p = 1/n: many components
  const SyncBfsProtocol p;
  for (auto& adv : standard_adversaries(g, seed)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name() << ": " << r.error;
    EXPECT_TRUE(matches_reference(g, p.output(r.board, n))) << adv->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesSeeds, SyncBfsRandomTest,
    ::testing::Combine(::testing::Values(4, 9, 25, 60, 150),
                       ::testing::Values(5u, 17u, 4242u)));

TEST(SyncBfs, NonBipartiteGraphsWhereAsyncWouldDeadlock) {
  // Head-to-head with Cor 4's limitation: odd cycles deadlock the ASYNC
  // bipartite protocol but must succeed here, on every schedule.
  const SyncBfsProtocol p;
  for (std::size_t n : {3u, 5u, 7u}) {
    const Graph g = cycle_graph(n);
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      return matches_reference(g, p.output(r.board, n));
    })) << "n=" << n;
  }
}

TEST(SyncBfs, TriangleWithPendantExercisesD0Accounting) {
  // Triangle {1,2,3} plus pendant 4-1: node 3 reaches layer 1 with an
  // intra-layer edge to 2 whose d0 charge depends on the schedule.
  GraphBuilder b(4);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  b.add_edge(1, 4);
  const Graph g = b.build();
  const SyncBfsProtocol p;
  EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
    return matches_reference(g, p.output(r.board, 4));
  }));
}

TEST(SyncBfs, ThreePlusComponentsExerciseTheSwitchRule) {
  GraphBuilder b(10);
  b.add_edge(1, 2);
  b.add_edge(2, 3);   // component A, depth 2
  b.add_edge(4, 5);
  b.add_edge(4, 6);
  b.add_edge(5, 6);   // component B: a triangle
  b.add_edge(7, 8);   // component C
  // 9, 10 isolated.
  const Graph g = b.build();
  const SyncBfsProtocol p;
  for (auto& adv : standard_adversaries(g, 55)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name() << ": " << r.error;
    EXPECT_TRUE(matches_reference(g, p.output(r.board, 10))) << adv->name();
  }
}

TEST(SyncBfs, MessageIsLogN) {
  const SyncBfsProtocol p;
  // id + layer + parent + three counters ≈ 6·log n.
  EXPECT_LE(p.message_bit_limit(1024), 6u * 11u);
}

TEST(SyncBfs, MeasuredBitsWithinBound) {
  const Graph g = connected_gnp(80, 1, 8, 2);
  const SyncBfsProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.stats.max_message_bits, p.message_bit_limit(80));
}

}  // namespace
}  // namespace wb
