#include "src/protocols/subgraph.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

/// Reference answer: G's edges restricted to {1..f}, on n nodes.
Graph prefix_subgraph(const Graph& g, std::size_t f) {
  GraphBuilder b(g.node_count());
  for (const Edge& e : g.edges()) {
    if (e.u <= f && e.v <= f) b.add_edge(e.u, e.v);
  }
  return b.build();
}

class SubgraphTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SubgraphTest, ReconstructsPrefixEdges) {
  const auto [n, f] = GetParam();
  const SubgraphProtocol p(f);
  const Graph g = erdos_renyi(n, 1, 2, n * 31 + f);
  for (auto& adv : standard_adversaries(g, f)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    EXPECT_EQ(p.output(r.board, n), prefix_subgraph(g, f)) << adv->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SubgraphTest,
                         ::testing::Values(std::tuple{6u, 3u},
                                           std::tuple{10u, 5u},
                                           std::tuple{40u, 8u},
                                           std::tuple{40u, 40u},
                                           std::tuple{25u, 1u},
                                           std::tuple{12u, 30u}));

TEST(Subgraph, ExhaustiveSchedulesSmall) {
  const SubgraphProtocol p(3);
  for_each_labeled_graph(4, [&](const Graph& g) {
    const Graph expect = prefix_subgraph(g, 3);
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      return p.output(r.board, 4) == expect;
    }));
  });
}

TEST(Subgraph, MessageSizeIsFPlusIdBits) {
  const SubgraphProtocol p(64);
  EXPECT_LE(p.message_bit_limit(4096), 64u + 12u);
  // Theorem 9's point: the budget scales with f, not with n.
  const SubgraphProtocol small(8);
  EXPECT_LE(small.message_bit_limit(1u << 16), 8u + 16u);
}

TEST(Subgraph, MeasuredBitsMatchPrefixMembership) {
  const std::size_t n = 30, f = 10;
  const SubgraphProtocol p(f);
  const Graph g = erdos_renyi(n, 1, 2, 77);
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_TRUE(r.ok());
  // Prefix nodes write id+f bits, the rest only their id: check totals.
  const std::size_t id_bits = 5;  // ceil(log2 30)
  EXPECT_EQ(r.stats.total_bits, n * id_bits + f * f);
}

TEST(Subgraph, AsymmetricPrefixRowsRaiseDataError) {
  const SubgraphProtocol p(2);
  const std::vector<Edge> edges = {{1, 2}};
  const Graph g(3, edges);
  const ExecutionResult r = run_protocol(g, p);
  ASSERT_TRUE(r.ok());
  // Forge node 2's message to deny the edge {1,2}.
  Whiteboard corrupted;
  for (std::size_t i = 0; i < r.board.message_count(); ++i) {
    BitReader probe(r.board.message(i));
    const NodeId id = static_cast<NodeId>(probe.read_uint(2) + 1);
    if (id == 2) {
      BitWriter w;
      w.write_uint(1, 2);   // id 2
      w.write_bit(false);   // denies {2,1}
      w.write_bit(false);
      corrupted.append(w.take());
    } else {
      corrupted.append(r.board.message(i));
    }
  }
  EXPECT_THROW((void)p.output(corrupted, 3), DataError);
}

}  // namespace
}  // namespace wb
