#include "src/protocols/build_degenerate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

class DegenerateReconstructionTest
    : public ::testing::TestWithParam<
          std::tuple<int, std::size_t, std::uint64_t>> {};

TEST_P(DegenerateReconstructionTest, RandomKDegenerateGraphsReconstruct) {
  const auto [k, n, seed] = GetParam();
  const BuildDegenerateProtocol p(k);
  const Graph g = random_k_degenerate(n, k, 20, seed);
  for (auto& adv : standard_adversaries(g, seed)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    const BuildOutput out = p.output(r.board, n);
    ASSERT_TRUE(out.has_value()) << adv->name();
    EXPECT_EQ(*out, g) << adv->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    KSizesSeeds, DegenerateReconstructionTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(6, 20, 64, 150),
                       ::testing::Values(3u, 77u)));

TEST(BuildDegenerate, ExhaustiveClassificationN5K2) {
  // Every labeled 5-node graph: degeneracy ≤ 2 must reconstruct exactly,
  // anything denser must be rejected (recognition variant of Thm 2).
  const BuildDegenerateProtocol p(2);
  FirstAdversary adv;
  std::size_t accepted = 0, rejected = 0;
  for_each_labeled_graph(5, [&](const Graph& g) {
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    const BuildOutput out = p.output(r.board, 5);
    if (is_k_degenerate(g, 2)) {
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, g);
      ++accepted;
    } else {
      EXPECT_EQ(out, std::nullopt);
      ++rejected;
    }
  });
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(accepted + rejected, 1024u);
}

TEST(BuildDegenerate, OrderInsensitiveDecodingExhaustiveSchedules) {
  const BuildDegenerateProtocol p(2);
  const Graph g = random_k_degenerate(5, 2, 10, 5);
  EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
    const BuildOutput out = p.output(r.board, 5);
    return out.has_value() && *out == g;
  }));
}

TEST(BuildDegenerate, RejectsCliquesAboveK) {
  for (int k = 1; k <= 4; ++k) {
    const BuildDegenerateProtocol p(k);
    const Graph g = complete_graph(static_cast<std::size_t>(k) + 2);
    FirstAdversary adv;
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(p.output(r.board, g.node_count()), std::nullopt) << "k=" << k;
  }
}

TEST(BuildDegenerate, AcceptsCliqueAtExactDegeneracy) {
  // K_{k+1} has degeneracy exactly k.
  for (int k = 1; k <= 4; ++k) {
    const BuildDegenerateProtocol p(k);
    const Graph g = complete_graph(static_cast<std::size_t>(k) + 1);
    FirstAdversary adv;
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    const BuildOutput out = p.output(r.board, g.node_count());
    ASSERT_TRUE(out.has_value()) << "k=" << k;
    EXPECT_EQ(*out, g);
  }
}

TEST(BuildDegenerate, PlanarLikeWorkloadsAtK5) {
  // Planar graphs have degeneracy ≤ 5 (§3.4); grids are the planar workload
  // here (degeneracy 2, but run under the k = 5 protocol as the paper would).
  const BuildDegenerateProtocol p(5);
  const Graph g = grid_graph(6, 7);
  FirstAdversary adv;
  const ExecutionResult r = run_protocol(g, p, adv);
  ASSERT_TRUE(r.ok());
  const BuildOutput out = p.output(r.board, g.node_count());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, g);
}

TEST(BuildDegenerate, TableDecoderAgreesWithNewton) {
  const BuildDegenerateProtocol newton(2, DegenerateDecoder::kNewton);
  const BuildDegenerateProtocol table(2, DegenerateDecoder::kTable);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = random_k_degenerate(16, 2, 25, seed);
    FirstAdversary adv;
    const ExecutionResult r = run_protocol(g, newton, adv);
    ASSERT_TRUE(r.ok());
    const BuildOutput a = newton.output(r.board, 16);
    const BuildOutput b = table.output(r.board, 16);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(*a, g);
  }
}

TEST(BuildDegenerate, MessageSizeIsOrderKSquaredLogN) {
  // Lemma 1: O(k² log n) bits; check the constant stays modest.
  for (int k = 1; k <= 5; ++k) {
    for (std::size_t n : {16u, 256u, 4096u}) {
      const BuildDegenerateProtocol p(k);
      const double logn = std::log2(static_cast<double>(n));
      const double bound =
          (static_cast<double>(k) * (k + 3) / 2.0 + 2.0) * (logn + 1) + 8;
      EXPECT_LE(static_cast<double>(p.message_bit_limit(n)), bound)
          << "k=" << k << " n=" << n;
    }
  }
}

TEST(BuildDegenerate, ForestsMatchDedicatedProtocolSemantics) {
  // k = 1 instance must accept exactly the forests.
  const BuildDegenerateProtocol p(1);
  FirstAdversary adv;
  for_each_labeled_graph(4, [&](const Graph& g) {
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    const BuildOutput out = p.output(r.board, 4);
    EXPECT_EQ(out.has_value(), is_k_degenerate(g, 1));
    if (out.has_value()) {
      EXPECT_EQ(*out, g);
    }
  });
}

TEST(BuildDegenerate, CorruptedPowerSumsRaiseDataError) {
  const BuildDegenerateProtocol p(2);
  const Graph g = cycle_graph(5);  // degeneracy 2
  FirstAdversary adv;
  const ExecutionResult r = run_protocol(g, p, adv);
  ASSERT_TRUE(r.ok());
  // Flip one bit inside the first message's power-sum region.
  Whiteboard corrupted;
  for (std::size_t i = 0; i < r.board.message_count(); ++i) {
    if (i != 0) {
      corrupted.append(r.board.message(i));
      continue;
    }
    const Bits& m = r.board.message(i);
    BitWriter w;
    for (std::size_t b = 0; b < m.size(); ++b) {
      w.write_bit(b == m.size() - 1 ? !m.bit(b) : m.bit(b));
    }
    corrupted.append(w.take());
  }
  EXPECT_THROW((void)p.output(corrupted, 5), DataError);
}

TEST(BuildDegenerate, RejectsUnsupportedK) {
  EXPECT_THROW(BuildDegenerateProtocol(0), LogicError);
  EXPECT_THROW(BuildDegenerateProtocol(6), LogicError);
}

}  // namespace
}  // namespace wb
