#include "src/protocols/triangle.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

TEST(TriangleOracle, ExhaustiveCorrectnessN5) {
  const TriangleOracleProtocol p;
  FirstAdversary adv;
  for_each_labeled_graph(5, [&](const Graph& g) {
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(p.output(r.board, 5), has_triangle(g));
  });
}

TEST(TriangleOracle, OrderInsensitiveExhaustiveSchedules) {
  const Graph g = complete_graph(4);
  const TriangleOracleProtocol p;
  EXPECT_TRUE(all_executions_ok(
      g, p, [&](const ExecutionResult& r) { return p.output(r.board, 4); }));
}

TEST(TriangleOracle, LargeRandomInstances) {
  const TriangleOracleProtocol p;
  for (std::uint64_t seed : {1u, 2u}) {
    const Graph dense = erdos_renyi(60, 1, 3, seed);
    const Graph free = random_even_odd_bipartite(60, 1, 3, seed);
    const ExecutionResult rd = run_protocol(dense, p);
    const ExecutionResult rf = run_protocol(free, p);
    ASSERT_TRUE(rd.ok() && rf.ok());
    EXPECT_EQ(p.output(rd.board, 60), has_triangle(dense));
    EXPECT_FALSE(p.output(rf.board, 60));
  }
}

// --- Pair chase: soundness is unconditional, completeness is measured ------

TEST(TrianglePairChase, SoundnessEveryScheduleUpToN5) {
  // A kYes verdict must always be backed by a real triangle, whatever the
  // schedule (certificates are verified constructions; the CSP answer "yes"
  // requires all consistent graphs to contain a triangle).
  const TrianglePairChaseProtocol p(/*csp_limit=*/0);
  for (std::size_t n = 3; n <= 5; ++n) {
    for_each_labeled_graph(n, [&](const Graph& g) {
      if (has_triangle(g)) return;  // only triangle-free can violate soundness
      EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
        return p.output(r.board, n) != TriangleVerdict::kYes;
      }));
    });
  }
}

TEST(TrianglePairChase, CompleteOnAllGraphsN5EverySchedule) {
  // Measured once and pinned: over all 1024 labeled graphs on 5 nodes and
  // every one of their schedules, the chase alone (no consistent-graph
  // fallback) answers correctly — 0 missed triangles, 0 unsound yes.
  // Deterministic, so asserted outright; a regression in the announcement
  // or certificate logic trips this immediately.
  const TrianglePairChaseProtocol p(0);
  for_each_labeled_graph(5, [&](const Graph& g) {
    const bool truth = has_triangle(g);
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      return (p.output(r.board, 5) == TriangleVerdict::kYes) == truth;
    }));
  });
}

TEST(TrianglePairChase, DetectsSmallCliquesUnderEverySchedule) {
  // In K3/K4 the second writer's back-degree is ≤ 3, so its announcement is
  // decodable and the third writer always certifies.
  const TrianglePairChaseProtocol p(0);
  for (std::size_t n : {3u, 4u}) {
    const Graph g = complete_graph(n);
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      return p.output(r.board, n) == TriangleVerdict::kYes;
    })) << "K" << n;
  }
}

TEST(TrianglePairChase, CspVerdictsAreNeverWrongN4) {
  // With the consistent-graph analysis the output can abstain (kUnknown) but
  // can never assert a wrong answer: the true graph is always in the
  // consistent set. Sweep all 64 graphs on 4 nodes under every schedule and
  // count the abstentions (reported by bench_table2_classification).
  const TrianglePairChaseProtocol p(/*csp_limit=*/4);
  std::uint64_t unknowns = 0, checked = 0;
  for_each_labeled_graph(4, [&](const Graph& g) {
    const bool truth = has_triangle(g);
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      const TriangleVerdict v = p.output(r.board, 4);
      ++checked;
      if (v == TriangleVerdict::kUnknown) {
        ++unknowns;
        return true;  // abstention is allowed, wrongness is not
      }
      return (v == TriangleVerdict::kYes) == truth;
    }));
  });
  EXPECT_GT(checked, 0u);
  // Determinism makes this a fixed number; assert the measured value so any
  // behavioral change of the candidate protocol is caught.
  RecordProperty("unknown_verdicts", static_cast<int>(unknowns));
}

TEST(TrianglePairChase, PlantedTrianglesDetectedUnderBattery) {
  const TrianglePairChaseProtocol p(0);
  std::size_t detected = 0, total = 0;
  for (std::uint64_t seed : {3u, 9u, 27u}) {
    bool planted = false;
    const Graph g = planted_triangle(12, 1, 3, seed, &planted);
    if (!planted) continue;
    for (auto& adv : standard_adversaries(g, seed)) {
      const ExecutionResult r = run_protocol(g, p, *adv);
      ASSERT_TRUE(r.ok());
      ++total;
      if (p.output(r.board, 12) == TriangleVerdict::kYes) ++detected;
    }
  }
  // Soundness means detection implies truth; we additionally expect the
  // chase to find most planted triangles under the standard battery.
  EXPECT_GT(total, 0u);
  EXPECT_GT(detected, total / 2);
}

TEST(TrianglePairChase, TriangleFreeNeverCertifiesUnderBattery) {
  const TrianglePairChaseProtocol p(0);
  for (std::uint64_t seed : {5u, 15u}) {
    const Graph g = random_even_odd_bipartite(16, 1, 2, seed);
    for (auto& adv : standard_adversaries(g, seed)) {
      const ExecutionResult r = run_protocol(g, p, *adv);
      ASSERT_TRUE(r.ok());
      EXPECT_NE(p.output(r.board, 16), TriangleVerdict::kYes) << adv->name();
    }
  }
}

TEST(TrianglePairChase, MessageIsLogN) {
  const TrianglePairChaseProtocol p(0);
  // announce: kind + id + count + p1 + p2 + p3 ≈ 1 + 11 + 11 + 22 + 33 + 44.
  EXPECT_LE(p.message_bit_limit(1024), 128u);
}

TEST(TrianglePairChase, CspLimitGuard) {
  EXPECT_THROW(TrianglePairChaseProtocol(7), LogicError);
}

}  // namespace
}  // namespace wb
