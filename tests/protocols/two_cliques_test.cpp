#include "src/protocols/two_cliques.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

/// Side assignments must be constant on each clique and split 0/1.
bool sides_are_consistent(const Graph& g, const TwoCliquesOutput& out) {
  if (!out.yes) return false;
  const Components c = connected_components(g);
  if (c.count != 2) return false;
  for (NodeId u = 1; u <= g.node_count(); ++u) {
    for (NodeId v = u + 1; v <= g.node_count(); ++v) {
      const bool same_comp = c.component[u - 1] == c.component[v - 1];
      const bool same_side = out.side[u - 1] == out.side[v - 1];
      if (same_comp != same_side) return false;
    }
  }
  return true;
}

TEST(TwoCliques, YesInstancesEverySchedule) {
  // (2n)! schedules: 2, 24, 720, 40320 — all within the explorer's budget.
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    const Graph g = two_cliques(n);
    const TwoCliquesProtocol p;
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      const TwoCliquesOutput out = p.output(r.board, 2 * n);
      return out.yes && (n == 1 || sides_are_consistent(g, out));
    })) << "n=" << n;
  }
}

TEST(TwoCliques, YesInstanceN4SampledSchedules) {
  const Graph g = two_cliques(4);
  const TwoCliquesProtocol p;
  for (auto& adv : standard_adversaries(g, 31)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    const TwoCliquesOutput out = p.output(r.board, 8);
    EXPECT_TRUE(out.yes) << adv->name();
    EXPECT_TRUE(sides_are_consistent(g, out)) << adv->name();
  }
}

TEST(TwoCliques, SwitchedNoInstancesEverySchedule) {
  // two_cliques_switched(3) is 2-regular connected on 6 nodes: a NO instance.
  const Graph g = two_cliques_switched(3);
  const TwoCliquesProtocol p;
  EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
    return !p.output(r.board, 6).yes;
  }));
}

TEST(TwoCliques, CycleC6IsANoInstanceEverySchedule) {
  // C6 is (n-1)=2-regular on 2n=6 nodes but connected: the count check (or a
  // conflict message) must reject it under *every* schedule — including the
  // all-one-side floods where no conflict is ever written.
  const Graph g = cycle_graph(6);
  const TwoCliquesProtocol p;
  EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
    return !p.output(r.board, 6).yes;
  }));
}

TEST(TwoCliques, LargerInstancesUnderBattery) {
  for (std::size_t n : {5u, 9u, 16u}) {
    const Graph yes = two_cliques(n);
    const Graph no = two_cliques_switched(n);
    const TwoCliquesProtocol p;
    for (auto& adv : standard_adversaries(yes, n)) {
      const ExecutionResult r = run_protocol(yes, p, *adv);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(p.output(r.board, 2 * n).yes) << "n=" << n << " " << adv->name();
    }
    for (auto& adv : standard_adversaries(no, n)) {
      const ExecutionResult r = run_protocol(no, p, *adv);
      ASSERT_TRUE(r.ok());
      EXPECT_FALSE(p.output(r.board, 2 * n).yes) << "n=" << n << " " << adv->name();
    }
  }
}

TEST(TwoCliques, MessageIsLogN) {
  const TwoCliquesProtocol p;
  EXPECT_LE(p.message_bit_limit(4096), 12u + 2u);
}

}  // namespace
}  // namespace wb
