#include "src/protocols/eob_bfs.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

/// The paper's output contract: layers equal true BFS distances from the
/// minimum-ID root of each component, parents are valid BFS parents.
bool matches_reference(const Graph& g, const BfsProtocolOutput& out) {
  if (!out.valid) return false;
  const BfsForest ref = bfs_forest(g);
  return out.layer == ref.layer && out.roots == ref.roots &&
         is_valid_bfs_forest(g, out.layer, out.parent);
}

TEST(EobBfs, ExhaustiveAllEvenOddGraphsAllSchedulesN6) {
  // All 2^9 = 512 even-odd-bipartite graphs on 6 nodes (connected or not),
  // every adversarial schedule of each.
  const EobBfsProtocol p;
  std::uint64_t graphs = 0;
  for_each_even_odd_bipartite_graph(6, [&](const Graph& g) {
    ++graphs;
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      return matches_reference(g, p.output(r.board, 6));
    })) << to_edge_list(g);
  });
  EXPECT_EQ(graphs, 512u);
}

TEST(EobBfs, ExhaustiveInvalidInputsAreReportedN5) {
  // Graphs that are NOT even-odd-bipartite must be flagged invalid on every
  // schedule (Thm 7's first activation rule).
  const EobBfsProtocol p;
  for_each_labeled_graph(5, [&](const Graph& g) {
    if (is_even_odd_bipartite(g)) return;
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      return !p.output(r.board, 5).valid;
    }));
  });
}

class EobRandomTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(EobRandomTest, ConnectedGraphsUnderBattery) {
  const auto [n, seed] = GetParam();
  const Graph g = connected_even_odd_bipartite(n, 1, 4, seed);
  const EobBfsProtocol p;
  for (auto& adv : standard_adversaries(g, seed)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name() << ": " << r.error;
    EXPECT_TRUE(matches_reference(g, p.output(r.board, n))) << adv->name();
  }
}

TEST_P(EobRandomTest, DisconnectedGraphsUnderBattery) {
  const auto [n, seed] = GetParam();
  const Graph g = random_even_odd_bipartite(n, 1, 6, seed);
  const EobBfsProtocol p;
  for (auto& adv : standard_adversaries(g, seed)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name() << ": " << r.error;
    EXPECT_TRUE(matches_reference(g, p.output(r.board, n))) << adv->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesSeeds, EobRandomTest,
    ::testing::Combine(::testing::Values(2, 7, 16, 41, 100),
                       ::testing::Values(3u, 23u, 777u)));

TEST(EobBfs, ThreePlusComponentsExerciseTheSwitchRule) {
  // Three components, each with a nonzero-degree root — the case where the
  // paper's literal switch condition would stall (see eob_bfs.h).
  GraphBuilder b(9);
  b.add_edge(1, 2);  // component A: root 1, layer-1 = {2}
  b.add_edge(3, 4);  // component B: root 3
  b.add_edge(5, 6);  // component C: root 5
  b.add_edge(6, 7);  // ... with depth 2
  // 8, 9 isolated: two singleton components.
  const Graph g = b.build();
  const EobBfsProtocol p;
  EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
    return matches_reference(g, p.output(r.board, 9));
  }));
}

TEST(EobBfs, InvalidGraphMixedWithValidProgress) {
  // A same-parity edge far from node 1: BFS progress may interleave with the
  // invalid report, but every schedule must end valid=false and successful.
  GraphBuilder b(7);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(5, 7);  // odd-odd: invalid
  const Graph g = b.build();
  const EobBfsProtocol p;
  EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
    return !p.output(r.board, 7).valid;
  }));
}

TEST(BipartiteBfs, SolvesEvenCyclesWithScrambledIds) {
  // Corollary 4: bipartite inputs whose bipartition is NOT the ID parity.
  // C4 with labels making it not even-odd: edges 1-3, 3-2, 2-4, 4-1.
  GraphBuilder b(4);
  b.add_edge(1, 3);
  b.add_edge(3, 2);
  b.add_edge(2, 4);
  b.add_edge(4, 1);
  const Graph g = b.build();
  ASSERT_FALSE(is_even_odd_bipartite(g));
  ASSERT_TRUE(is_bipartite(g));
  const EobBfsProtocol p(EobMode::kBipartiteNoCheck);
  EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
    const BfsProtocolOutput out = p.output(r.board, 4);
    const BfsForest ref = bfs_forest(g);
    return out.valid && out.layer == ref.layer;
  }));
}

TEST(BipartiteBfs, RandomBipartiteUnderBattery) {
  for (std::uint64_t seed : {4u, 9u}) {
    Graph base = random_bipartite(6, 6, 1, 2, seed);
    const Graph g = relabel(base, random_permutation(12, seed));
    if (!is_bipartite(g)) continue;  // always bipartite; defensive
    const EobBfsProtocol p(EobMode::kBipartiteNoCheck);
    for (auto& adv : standard_adversaries(g, seed)) {
      const ExecutionResult r = run_protocol(g, p, *adv);
      ASSERT_TRUE(r.ok()) << adv->name() << ": " << r.error;
      const BfsProtocolOutput out = p.output(r.board, 12);
      EXPECT_TRUE(out.valid);
      EXPECT_TRUE(is_valid_bfs_forest(g, out.layer, out.parent))
          << adv->name();
    }
  }
}

TEST(BipartiteBfs, PureOddCyclesHappenToSucceed) {
  // A finding worth pinning (EXPERIMENTS.md): on a bare odd cycle the unique
  // intra-layer edge sits at the *last* BFS layer, where no further
  // certificate is ever needed — the protocol terminates with correct
  // layers. The Cor 4 deadlock needs structure beyond the odd edge.
  const EobBfsProtocol p(EobMode::kBipartiteNoCheck);
  for (std::size_t n : {3u, 5u, 7u}) {
    const Graph g = cycle_graph(n);
    const BfsForest ref = bfs_forest(g);
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      return p.output(r.board, n).layer == ref.layer;
    })) << "n=" << n;
  }
}

TEST(BipartiteBfs, DeadlocksBeyondTheOddEdge) {
  // Deadlock cases per the Cor 4 remark: (a) an intra-layer edge with nodes
  // two layers further — their certificate never balances; (b) an odd
  // component followed by another component — the switch condition never
  // clears the pending intra-layer edges.
  const EobBfsProtocol p(EobMode::kBipartiteNoCheck);

  // (a) Triangle with a length-2 tail: 5 needs cert(2), which never holds.
  GraphBuilder a(5);
  a.add_edge(1, 2);
  a.add_edge(1, 3);
  a.add_edge(2, 3);
  a.add_edge(3, 4);
  a.add_edge(4, 5);
  // (b) Triangle plus an isolated node.
  GraphBuilder b(4);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  for (const Graph& g : {a.build(), b.build()}) {
    std::uint64_t deadlocks = 0, executions = 0;
    for_each_execution(g, p, [&](const ExecutionResult& r) {
      ++executions;
      if (r.status == RunStatus::kDeadlock) ++deadlocks;
      return true;
    });
    EXPECT_GT(executions, 0u);
    EXPECT_EQ(deadlocks, executions);
  }
}

TEST(EobBfs, SingleNodeAndSingleEdge) {
  const EobBfsProtocol p;
  {
    const Graph g(1);
    FirstAdversary adv;
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    const BfsProtocolOutput out = p.output(r.board, 1);
    EXPECT_TRUE(out.valid);
    EXPECT_EQ(out.roots, (std::vector<NodeId>{1}));
  }
  {
    const std::vector<Edge> edges = {{1, 2}};
    const Graph g(2, edges);
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      return matches_reference(g, p.output(r.board, 2));
    }));
  }
}

TEST(EobBfs, MessageIsLogN) {
  const EobBfsProtocol p;
  // kind + id + layer + parent + two counters ≈ 5·log n + 1.
  EXPECT_LE(p.message_bit_limit(1024), 5u * 11u + 1u);
}

}  // namespace
}  // namespace wb
