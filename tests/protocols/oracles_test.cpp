#include "src/protocols/oracles.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

TEST(PropertyOracles, SquareOracleExhaustiveN5) {
  const PropertyOracleProtocol p = square_oracle();
  FirstAdversary adv;
  for_each_labeled_graph(5, [&](const Graph& g) {
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(p.output(r.board, 5), has_square(g));
  });
}

TEST(PropertyOracles, DiameterOracleMatchesReference) {
  const PropertyOracleProtocol p = diameter_at_most_oracle(3);
  FirstAdversary adv;
  const Graph graphs[] = {path_graph(4),  // diameter 3 -> yes
                          path_graph(5),  // diameter 4 -> no
                          complete_graph(6),
                          two_cliques(3),  // disconnected -> no
                          star_graph(8)};
  const bool expected[] = {true, false, true, false, true};
  for (std::size_t i = 0; i < 5; ++i) {
    const ExecutionResult r = run_protocol(graphs[i], p, adv);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(p.output(r.board, graphs[i].node_count()), expected[i]) << i;
  }
}

TEST(PropertyOracles, ConnectivityOracle) {
  const PropertyOracleProtocol p = connectivity_oracle();
  FirstAdversary adv;
  for (std::uint64_t seed : {1u, 5u}) {
    const Graph connected = connected_gnp(20, 1, 6, seed);
    const Graph split = two_cliques(10);
    const ExecutionResult rc = run_protocol(connected, p, adv);
    const ExecutionResult rs = run_protocol(split, p, adv);
    ASSERT_TRUE(rc.ok() && rs.ok());
    EXPECT_TRUE(p.output(rc.board, 20));
    EXPECT_FALSE(p.output(rs.board, 20));
  }
}

TEST(PropertyOracles, MessageIsThetaN) {
  EXPECT_GE(square_oracle().message_bit_limit(128), 128u);
}

TEST(SpanningForest, ValidOnRandomGraphsUnderBattery) {
  const SpanningForestProtocol p;
  for (std::uint64_t seed : {3u, 8u}) {
    const Graph g = erdos_renyi(40, 1, 10, seed);  // usually disconnected
    for (auto& adv : standard_adversaries(g, seed)) {
      const ExecutionResult r = run_protocol(g, p, *adv);
      ASSERT_TRUE(r.ok()) << adv->name();
      const SpanningForestOutput out = p.output(r.board, 40);
      EXPECT_TRUE(is_spanning_forest_of(g, out)) << adv->name();
      EXPECT_EQ(out.edges.size(), 40 - out.components);
    }
  }
}

TEST(SpanningForest, ConnectivityAnswerMatchesReference) {
  const SpanningForestProtocol p;
  FirstAdversary adv;
  const Graph graphs[] = {connected_gnp(25, 1, 5, 2), two_cliques(8),
                          empty_graph(6), path_graph(9)};
  for (const Graph& g : graphs) {
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(p.output(r.board, g.node_count()).connected, is_connected(g));
  }
}

TEST(SpanningForest, TreeInputsReturnAllEdges) {
  const SpanningForestProtocol p;
  FirstAdversary adv;
  const Graph g = random_tree(30, 4);
  const ExecutionResult r = run_protocol(g, p, adv);
  ASSERT_TRUE(r.ok());
  const SpanningForestOutput out = p.output(r.board, 30);
  EXPECT_EQ(out.edges, g.edge_vector());  // the only spanning tree of a tree
  EXPECT_TRUE(out.connected);
}

TEST(SpanningForestValidator, RejectsBadCertificates) {
  const Graph g = path_graph(4);
  SpanningForestOutput fake;
  fake.edges = {{1, 2}, {2, 3}, {3, 4}};
  fake.components = 1;
  fake.connected = true;
  EXPECT_TRUE(is_spanning_forest_of(g, fake));
  fake.edges = {{1, 2}, {2, 3}};  // not spanning
  EXPECT_FALSE(is_spanning_forest_of(g, fake));
  fake.edges = {{1, 2}, {2, 3}, {3, 4}, {1, 3}};  // 1-3 not a graph edge
  EXPECT_FALSE(is_spanning_forest_of(g, fake));
  fake.edges = {{1, 2}, {2, 3}, {3, 4}};
  fake.connected = false;  // wrong flag
  EXPECT_FALSE(is_spanning_forest_of(g, fake));
}

}  // namespace
}  // namespace wb
