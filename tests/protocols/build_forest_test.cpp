#include "src/protocols/build_forest.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

BuildOutput run_and_decode(const Graph& g, const BuildForestProtocol& p,
                           Adversary& adv) {
  const ExecutionResult r = run_protocol(g, p, adv);
  EXPECT_TRUE(r.ok()) << r.error;
  return p.output(r.board, g.node_count());
}

class ForestReconstructionTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(ForestReconstructionTest, RandomForestsReconstructUnderAllAdversaries) {
  const auto [n, seed] = GetParam();
  const BuildForestProtocol p;
  const Graph g = random_forest(n, 75, seed);
  for (auto& adv : standard_adversaries(g, seed)) {
    const BuildOutput out = run_and_decode(g, p, *adv);
    ASSERT_TRUE(out.has_value()) << adv->name();
    EXPECT_EQ(*out, g) << adv->name();
  }
}

TEST_P(ForestReconstructionTest, RandomTreesReconstruct) {
  const auto [n, seed] = GetParam();
  const BuildForestProtocol p;
  const Graph g = random_tree(n, seed);
  FirstAdversary adv;
  const BuildOutput out = run_and_decode(g, p, adv);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, g);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, ForestReconstructionTest,
    ::testing::Combine(::testing::Values(2, 3, 8, 33, 100, 257),
                       ::testing::Values(1u, 42u, 1234u)));

TEST(BuildForest, EveryLabeledForestUpToN5EverySchedule) {
  // SIMASYNC messages are order-independent in content, but the board order
  // varies with the schedule; the decoder must be insensitive. Exhausts all
  // labeled forests on ≤ 5 nodes and every write order of each.
  const BuildForestProtocol p;
  for (std::size_t n = 1; n <= 5; ++n) {
    for_each_labeled_forest(n, [&](const Graph& g) {
      EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
        const BuildOutput out = p.output(r.board, n);
        return out.has_value() && *out == g;
      }));
    });
  }
}

TEST(BuildForest, RejectsEveryNonForestUpToN5) {
  const BuildForestProtocol p;
  for (std::size_t n = 3; n <= 5; ++n) {
    for_each_labeled_graph(n, [&](const Graph& g) {
      if (is_k_degenerate(g, 1)) return;  // forests handled above
      FirstAdversary adv;
      const ExecutionResult r = run_protocol(g, p, adv);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(p.output(r.board, n), std::nullopt);
    });
  }
}

TEST(BuildForest, RejectsCycles) {
  const BuildForestProtocol p;
  for (std::size_t n : {3u, 10u, 51u}) {
    FirstAdversary adv;
    const Graph g = cycle_graph(n);
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(p.output(r.board, n), std::nullopt) << n;
  }
}

TEST(BuildForest, MessageSizeIsFourLogN) {
  const BuildForestProtocol p;
  for (std::size_t n : {4u, 16u, 256u, 1000u}) {
    const double logn = std::log2(static_cast<double>(n));
    EXPECT_LE(static_cast<double>(p.message_bit_limit(n)), 4 * logn + 6) << n;
  }
}

TEST(BuildForest, MeasuredBitsRespectDeclaredBound) {
  const BuildForestProtocol p;
  const Graph g = random_tree(64, 9);
  FirstAdversary adv;
  const ExecutionResult r = run_protocol(g, p, adv);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.stats.max_message_bits, p.message_bit_limit(64));
  EXPECT_LE(r.stats.total_bits, 64 * p.message_bit_limit(64));
}

TEST(BuildForest, CorruptedBoardsRaiseDataError) {
  const BuildForestProtocol p;
  const Graph g = path_graph(4);
  FirstAdversary adv;
  const ExecutionResult r = run_protocol(g, p, adv);
  ASSERT_TRUE(r.ok());

  // Missing message.
  Whiteboard truncated;
  for (std::size_t i = 0; i + 1 < r.board.message_count(); ++i) {
    truncated.append(r.board.message(i));
  }
  EXPECT_THROW((void)p.output(truncated, 4), DataError);

  // Duplicated writer.
  Whiteboard duplicated = truncated;
  duplicated.append(r.board.message(0));
  duplicated.append(r.board.message(0));
  EXPECT_THROW((void)p.output(duplicated, 4), DataError);

  // Trailing garbage bits on one message.
  Whiteboard padded;
  for (std::size_t i = 0; i < r.board.message_count(); ++i) {
    if (i == 2) {
      BitWriter w;
      for (std::size_t b = 0; b < r.board.message(i).size(); ++b) {
        w.write_bit(r.board.message(i).bit(b));
      }
      w.write_bit(true);
      padded.append(w.take());
    } else {
      padded.append(r.board.message(i));
    }
  }
  EXPECT_THROW((void)p.output(padded, 4), DataError);
}

TEST(BuildForest, SingleNodeAndEmptyEdgeSets) {
  const BuildForestProtocol p;
  for (std::size_t n : {1u, 2u, 7u}) {
    const Graph g = empty_graph(n);
    FirstAdversary adv;
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    const BuildOutput out = p.output(r.board, n);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, g);
  }
}

}  // namespace
}  // namespace wb
