#include "src/protocols/mis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

TEST(RootedMis, ExhaustiveAllGraphsAllRootsAllSchedulesUpToN4) {
  // The strongest possible evidence for Theorem 5 at small n: every labeled
  // graph, every root, every adversarial write order yields an inclusion-
  // maximal independent set containing the root.
  for (std::size_t n = 1; n <= 4; ++n) {
    for_each_labeled_graph(n, [&](const Graph& g) {
      for (NodeId root = 1; root <= n; ++root) {
        const RootedMisProtocol p(root);
        EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
          return is_rooted_mis(g, p.output(r.board, n), root);
        }));
      }
    });
  }
}

TEST(RootedMis, ExhaustiveSchedulesSelectedGraphsN6) {
  const Graph graphs[] = {cycle_graph(6), complete_graph(6), path_graph(6),
                          star_graph(6), two_cliques(3),
                          complete_bipartite(3, 3)};
  for (const Graph& g : graphs) {
    for (NodeId root : {NodeId{1}, NodeId{4}}) {
      const RootedMisProtocol p(root);
      EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
        return is_rooted_mis(g, p.output(r.board, 6), root);
      }));
    }
  }
}

class MisRandomTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MisRandomTest, RandomGraphsUnderAdversaryBattery) {
  const auto [n, seed] = GetParam();
  const Graph g = erdos_renyi(n, 1, 4, seed);
  const NodeId root = static_cast<NodeId>(1 + seed % n);
  const RootedMisProtocol p(root);
  for (auto& adv : standard_adversaries(g, seed)) {
    const ExecutionResult r = run_protocol(g, p, *adv);
    ASSERT_TRUE(r.ok()) << adv->name();
    EXPECT_TRUE(is_rooted_mis(g, p.output(r.board, n), root)) << adv->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesSeeds, MisRandomTest,
    ::testing::Combine(::testing::Values(5, 12, 40, 120, 300),
                       ::testing::Values(2u, 19u, 101u)));

TEST(RootedMis, RootIsAlwaysInTheSet) {
  const Graph g = complete_graph(7);  // MIS = single node
  for (NodeId root = 1; root <= 7; ++root) {
    const RootedMisProtocol p(root);
    LastAdversary adv;
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(p.output(r.board, 7), (MisOutput{root}));
  }
}

TEST(RootedMis, IsolatedNodesAllEnter) {
  const Graph g = empty_graph(6);
  const RootedMisProtocol p(3);
  FirstAdversary adv;
  const ExecutionResult r = run_protocol(g, p, adv);
  ASSERT_TRUE(r.ok());
  MisOutput out = p.output(r.board, 6);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (MisOutput{1, 2, 3, 4, 5, 6}));
}

TEST(RootedMis, MessageIsLogN) {
  const RootedMisProtocol p(1);
  EXPECT_LE(p.message_bit_limit(1024), 11u);
}

TEST(MisOracle, GreedyContainsRootAndIsMaximal) {
  for (std::uint64_t seed : {5u, 6u}) {
    const Graph g = erdos_renyi(12, 1, 3, seed);
    for (NodeId root = 1; root <= 12; root += 5) {
      const MisOracleProtocol p(root);
      FirstAdversary adv;
      const ExecutionResult r = run_protocol(g, p, adv);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(is_rooted_mis(g, p.output(r.board, 12), root));
    }
  }
}

TEST(MisOracle, DeterministicAcrossSchedules) {
  // The oracle's output depends only on the reconstructed graph, never on
  // the adversary's order (required by the Theorem 6 reduction).
  const Graph g = erdos_renyi(6, 1, 2, 8);
  const MisOracleProtocol p(2);
  MisOutput first_out;
  bool first = true;
  for_each_execution(g, p, [&](const ExecutionResult& r) {
    const MisOutput out = p.output(r.board, 6);
    if (first) {
      first_out = out;
      first = false;
    } else {
      EXPECT_EQ(out, first_out);
    }
    return true;
  });
}

}  // namespace
}  // namespace wb
