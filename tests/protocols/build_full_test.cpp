#include "src/protocols/build_full.h"

#include <gtest/gtest.h>

#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

TEST(BuildFull, ReconstructsArbitraryGraphs) {
  const BuildFullProtocol p;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = erdos_renyi(40, 1, 2, seed);
    for (auto& adv : standard_adversaries(g, seed)) {
      const ExecutionResult r = run_protocol(g, p, *adv);
      ASSERT_TRUE(r.ok()) << adv->name();
      EXPECT_EQ(p.output(r.board, 40), g) << adv->name();
    }
  }
}

TEST(BuildFull, ExhaustiveSmallGraphsAllSchedules) {
  const BuildFullProtocol p;
  for_each_labeled_graph(4, [&](const Graph& g) {
    EXPECT_TRUE(all_executions_ok(g, p, [&](const ExecutionResult& r) {
      return p.output(r.board, 4) == g;
    }));
  });
}

TEST(BuildFull, MessageIsThetaN) {
  const BuildFullProtocol p;
  EXPECT_GE(p.message_bit_limit(100), 100u);
  EXPECT_LE(p.message_bit_limit(100), 100u + 8u);
}

TEST(BuildFull, AsymmetricRowsRaiseDataError) {
  const BuildFullProtocol p;
  const std::vector<Edge> edges = {{1, 2}};
  const Graph g(3, edges);
  FirstAdversary adv;
  const ExecutionResult r = run_protocol(g, p, adv);
  ASSERT_TRUE(r.ok());
  // Rewrite node 3's row to claim adjacency with 1 (1 does not reciprocate).
  Whiteboard corrupted;
  for (std::size_t i = 0; i < 2; ++i) corrupted.append(r.board.message(i));
  {
    BitWriter w;
    w.write_uint(2, 2);  // id 3 (stored as id-1 = 2 in 2 bits)
    w.write_bit(true);   // claims edge {3,1}
    w.write_bit(false);
    w.write_bit(false);
    corrupted.append(w.take());
  }
  EXPECT_THROW((void)p.output(corrupted, 3), DataError);
}

}  // namespace
}  // namespace wb
