#include "src/protocols/randomized.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

TEST(RandomizedTwoCliques, YesInstancesAcceptedForEverySeed) {
  // Completeness is deterministic: same-clique nodes always fingerprint
  // identically, whatever the shared randomness.
  for (std::uint64_t seed : {1u, 2u, 3u, 17u, 999u}) {
    for (std::size_t n : {1u, 2u, 5u, 12u}) {
      const Graph g = two_cliques(n);
      const RandomizedTwoCliquesProtocol p(seed);
      FirstAdversary adv;
      const ExecutionResult r = run_protocol(g, p, adv);
      ASSERT_TRUE(r.ok());
      const TwoCliquesOutput out = p.output(r.board, 2 * n);
      EXPECT_TRUE(out.yes) << "seed=" << seed << " n=" << n;
      // Side assignment must separate the components.
      const Components c = connected_components(g);
      for (NodeId u = 1; u <= 2 * n; ++u) {
        for (NodeId v = u + 1; v <= 2 * n; ++v) {
          const bool same_comp = c.component[u - 1] == c.component[v - 1];
          EXPECT_EQ(same_comp, out.side[u - 1] == out.side[v - 1]);
        }
      }
    }
  }
}

TEST(RandomizedTwoCliques, NoInstancesRejectedAcrossSeeds) {
  // Soundness holds with high probability per seed; over 50 seeds and three
  // instance families we expect zero accepts (error ~ n/2^61).
  std::size_t accepts = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    for (const Graph& g :
         {two_cliques_switched(4), cycle_graph(8),
          two_cliques_switched(7)}) {
      const RandomizedTwoCliquesProtocol p(seed);
      FirstAdversary adv;
      const ExecutionResult r = run_protocol(g, p, adv);
      ASSERT_TRUE(r.ok());
      if (p.output(r.board, g.node_count()).yes) ++accepts;
    }
  }
  EXPECT_EQ(accepts, 0u);
}

TEST(RandomizedTwoCliques, OrderOblivious) {
  // SIMASYNC: the verdict cannot depend on the adversary's order.
  const Graph yes = two_cliques(3);
  const Graph no = two_cliques_switched(3);
  const RandomizedTwoCliquesProtocol p(7);
  EXPECT_TRUE(all_executions_ok(yes, p, [&](const ExecutionResult& r) {
    return p.output(r.board, 6).yes;
  }));
  EXPECT_TRUE(all_executions_ok(no, p, [&](const ExecutionResult& r) {
    return !p.output(r.board, 6).yes;
  }));
}

TEST(RandomizedTwoCliques, MessageIsLogNPlusFingerprint) {
  const RandomizedTwoCliquesProtocol p(1);
  // 61-bit fingerprint + id: constant + log n, well under o(n) for large n.
  EXPECT_LE(p.message_bit_limit(1u << 16), 16u + 61u);
}

TEST(RandomizedTwoCliques, FingerprintSeparatesNeighborhoods) {
  // Polynomial identity testing: distinct sets collide only with tiny
  // probability. Exhaustive over all pairs of distinct subsets of {1..10}
  // for a few random points: no collisions observed.
  std::vector<std::vector<NodeId>> subsets;
  for (std::uint32_t mask = 0; mask < (1u << 10); ++mask) {
    std::vector<NodeId> s;
    for (NodeId v = 1; v <= 10; ++v) {
      if ((mask >> (v - 1)) & 1u) s.push_back(v);
    }
    subsets.push_back(std::move(s));
  }
  for (std::uint64_t point : {12345u, 99999u, 31u}) {
    std::set<std::uint64_t> prints;
    std::size_t nonempty = 0;
    for (const auto& s : subsets) {
      if (s.empty()) continue;
      ++nonempty;
      prints.insert(RandomizedTwoCliquesProtocol::fingerprint(s, point));
    }
    EXPECT_EQ(prints.size(), nonempty) << "collision at point " << point;
  }
}

TEST(RandomizedTwoCliques, DifferentSeedsDifferentPoints) {
  // The fingerprints of a fixed set should vary with the seed (sanity that
  // the shared randomness is actually used).
  const Graph g = two_cliques(4);
  std::set<std::uint64_t> distinct_first_messages;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RandomizedTwoCliquesProtocol p(seed);
    FirstAdversary adv;
    const ExecutionResult r = run_protocol(g, p, adv);
    ASSERT_TRUE(r.ok());
    const Bits& m = r.board.message(0);
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < m.size() && i < 64; ++i) {
      key = (key << 1) | (m.bit(i) ? 1 : 0);
    }
    distinct_first_messages.insert(key);
  }
  EXPECT_GE(distinct_first_messages.size(), 7u);
}

}  // namespace
}  // namespace wb
