#!/usr/bin/env python3
"""Compare Google-Benchmark JSON baselines.

Usage:
    tools/bench_diff.py OLD.json NEW.json [--threshold PCT]
    tools/bench_diff.py BENCH_pr2.json BENCH_pr3.json BENCH_pr4.json ...

With exactly two files: a pairwise regression table. Matches benchmarks by
name, reports wall time old -> new with the ratio, and carries user counters
that exist on both sides (allocs_per_exec, executions_per_s, ...). Rows
whose time grew by more than --threshold percent are flagged REGRESSED and
make the exit status non-zero, so the script can gate CI once baselines come
from comparable hardware; across machines treat the table as informational.

With three or more files: the ROADMAP's trajectory dashboard — one column
per committed BENCH_prN.json baseline, one row per benchmark, and a
first->last ratio, so the whole pr2 -> pr3 -> pr4 -> ... history reads in
one table. Trajectory mode is informational (exit 0); missing benchmarks
render as "-".

Only the Python 3 standard library is used.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> dict[str, dict]:
    """name -> benchmark record, skipping aggregate rows (mean/median/...)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    out: dict[str, dict] = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = bench
    return out


def fmt_time(value_ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if value_ns >= scale:
            return f"{value_ns / scale:.2f}{unit}"
    return f"{value_ns:.0f}ns"


def to_ns(bench: dict) -> float:
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[
        bench.get("time_unit", "ns")
    ]
    return float(bench["real_time"]) * scale


def shared_counters(old: dict, new: dict) -> list[str]:
    skip = {
        "name", "run_name", "run_type", "repetitions", "repetition_index",
        "threads", "iterations", "real_time", "cpu_time", "time_unit",
        "family_index", "per_family_instance_index", "items_per_second",
        "aggregate_name", "error_occurred", "error_message",
    }
    keys = [
        k for k, v in old.items()
        if k not in skip and isinstance(v, (int, float)) and k in new
    ]
    return sorted(keys)


def column_label(path: str) -> str:
    """BENCH_pr3.json -> pr3; anything else -> its basename sans .json."""
    name = path.rsplit("/", 1)[-1]
    if name.endswith(".json"):
        name = name[: -len(".json")]
    if name.startswith("BENCH_"):
        name = name[len("BENCH_"):]
    return name


def print_trajectory(paths: list[str]) -> int:
    """One row per benchmark, one time column per baseline, first->last ratio."""
    baselines = [(column_label(p), load_benchmarks(p)) for p in paths]
    names: list[str] = []
    for _, benches in baselines:
        for name in benches:
            if name not in names:
                names.append(name)
    if not names:
        print("no benchmarks in any input file", file=sys.stderr)
        return 2

    rows = []
    for name in names:
        cells = []
        present = []
        for _, benches in baselines:
            if name in benches:
                ns = to_ns(benches[name])
                present.append(ns)
                cells.append(fmt_time(ns))
            else:
                cells.append("-")
        ratio = (f"{present[-1] / present[0]:.2f}x"
                 if len(present) >= 2 and present[0] > 0 else "-")
        rows.append([name] + cells + [ratio])

    header = ["benchmark"] + [label for label, _ in baselines] + ["last/first"]
    widths = [max(len(row[i]) for row in rows + [header])
              for i in range(len(header))]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    print(f"\ntrajectory over {len(baselines)} baselines, "
          f"{len(names)} benchmarks")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", metavar="BENCH.json",
                        help="2 files: pairwise diff; 3+: trajectory table")
    parser.add_argument(
        "--threshold", type=float, default=10.0,
        help="flag rows whose time grew more than PCT percent (default 10)")
    args = parser.parse_args()

    if len(args.files) == 1:
        parser.error("need at least two benchmark files")
    if len(args.files) > 2:
        return print_trajectory(args.files)

    old = load_benchmarks(args.files[0])
    new = load_benchmarks(args.files[1])
    common = [name for name in old if name in new]
    if not common:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 2

    rows = []
    regressed = 0
    for name in common:
        t_old, t_new = to_ns(old[name]), to_ns(new[name])
        ratio = t_new / t_old if t_old > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.threshold / 100.0:
            flag = "REGRESSED"
            regressed += 1
        elif ratio < 1.0 - args.threshold / 100.0:
            flag = "improved"
        extras = "  ".join(
            f"{key}: {old[name][key]:.4g} -> {new[name][key]:.4g}"
            for key in shared_counters(old[name], new[name]))
        rows.append((name, fmt_time(t_old), fmt_time(t_new),
                     f"{ratio:.2f}x", flag, extras))

    widths = [max(len(r[i]) for r in rows + [
        ("benchmark", "old", "new", "ratio", "", "")]) for i in range(5)]
    header = ("benchmark", "old", "new", "ratio", "")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    for row in rows:
        line = "  ".join(c.ljust(w) for c, w in zip(row[:5], widths)).rstrip()
        print(line)
        if row[5]:
            print(" " * 4 + row[5])

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"\nonly in {args.files[0]}: " + ", ".join(only_old))
    if only_new:
        print(f"only in {args.files[1]}: " + ", ".join(only_new))
    print(f"\n{len(common)} compared, {regressed} regressed "
          f"(threshold {args.threshold:.0f}%)")
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
