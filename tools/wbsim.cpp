// wbsim — run any protocol of the library on any generated graph under any
// adversary, from the command line.
//
//   wbsim <graph-spec> <protocol-spec> [adversary-spec]
//
//   wbsim kdeg:200:3:20:7 build-degenerate:3 random:5
//   wbsim cgnp:150:1/8:3  sync-bfs          maxdeg
//   wbsim twocliques:16   rand-two-cliques:99
//   wbsim ceob:80:1/6:2   eob-bfs           last
//
// The special adversary-spec `battery[:SEED]` runs the protocol under the
// whole standard adversary battery, fanned out across all cores through the
// batch engine:
//
//   wbsim cgnp:400:1/8:3  sync-bfs          battery:7
//
// The special adversary-spec `exhaustive[:THREADS]` visits *every* adversary
// schedule (the paper's correctness quantifier — small n only), partitioned
// across the shared worker pool (THREADS omitted or 0 = all cores, 1 =
// serial):
//
//   wbsim twocliques:4    two-cliques       exhaustive
//
// Exit code 0 iff every run executed and the output validated against the
// centralized reference algorithms.
#include <cstdio>
#include <string>

#include "src/cli/runners.h"
#include "src/cli/spec.h"
#include "src/support/check.h"

namespace {

void usage() {
  std::printf(
      "usage: wbsim <graph-spec> <protocol-spec> [adversary-spec]\n\n%s\n\n"
      "%s\n\n%s\n           battery[:SEED] (full battery, parallel)\n"
      "           exhaustive[:THREADS] (every schedule, parallel; small n)\n",
      wb::cli::graph_spec_help().c_str(),
      wb::cli::protocol_spec_help().c_str(),
      wb::cli::adversary_spec_help().c_str());
}

int run_battery(const wb::Graph& g, const std::string& protocol,
                const std::string& spec) {
  const auto parts = wb::cli::split_spec(spec);
  WB_REQUIRE_MSG(parts.size() <= 2, "expected battery[:SEED]");
  const std::uint64_t seed =
      parts.size() == 2 ? wb::cli::parse_u64(parts[1], "seed") : 1;
  const auto reports = wb::cli::run_protocol_spec_battery(protocol, g, seed);
  std::size_t correct = 0;
  for (const auto& report : reports) {
    std::printf("%s", report.summary.c_str());
    std::printf("result     %s\n\n", report.correct ? "PASS" : "FAIL");
    if (report.correct) ++correct;
  }
  std::printf("battery    %zu/%zu adversaries ok\n", correct, reports.size());
  return correct == reports.size() ? 0 : 1;
}

int run_exhaustive(const wb::Graph& g, const std::string& protocol,
                   const std::string& spec) {
  const auto parts = wb::cli::split_spec(spec);
  WB_REQUIRE_MSG(parts.size() <= 2, "expected exhaustive[:THREADS]");
  const std::size_t threads = parts.size() == 2
                                  ? static_cast<std::size_t>(wb::cli::parse_u64(
                                        parts[1], "threads"))
                                  : 0;
  const wb::cli::RunReport report =
      wb::cli::run_protocol_spec_exhaustive(protocol, g, threads);
  std::printf("%s", report.summary.c_str());
  std::printf("result     %s\n", report.correct ? "PASS" : "FAIL");
  return report.correct ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4 || std::string(argv[1]) == "--help") {
    usage();
    return argc >= 2 && std::string(argv[1]) == "--help" ? 0 : 2;
  }
  try {
    const wb::Graph g = wb::cli::graph_from_spec(argv[1]);
    const std::string adversary_spec = argc == 4 ? argv[3] : "first";
    if (wb::cli::split_spec(adversary_spec)[0] == "battery") {
      return run_battery(g, argv[2], adversary_spec);
    }
    if (wb::cli::split_spec(adversary_spec)[0] == "exhaustive") {
      return run_exhaustive(g, argv[2], adversary_spec);
    }
    auto adversary = wb::cli::adversary_from_spec(adversary_spec, g);
    const wb::cli::RunReport report =
        wb::cli::run_protocol_spec(argv[2], g, *adversary);
    std::printf("%s", report.summary.c_str());
    std::printf("result     %s\n", report.correct ? "PASS" : "FAIL");
    return report.correct ? 0 : 1;
  } catch (const wb::DataError& e) {
    std::printf("error: %s\n", e.what());
    return 2;
  } catch (const wb::LogicError& e) {
    std::printf("internal error: %s\n", e.what());
    return 3;
  }
}
