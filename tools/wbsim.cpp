// wbsim — run any protocol of the library on any generated graph under any
// adversary, from the command line.
//
// The tool is a command registry (src/cli/command.h): `wbsim help` lists
// every subcommand, `wbsim help <command>` prints its usage, and the
// commandless invocation runs one protocol:
//
//   wbsim <graph-spec> <protocol-spec> [adversary-spec] [--counterexample]
//
//   wbsim kdeg:200:3:20:7 build-degenerate:3 random:5
//   wbsim cgnp:150:1/8:3  sync-bfs          maxdeg
//   wbsim twocliques:16   rand-two-cliques:99
//
// The pseudo-adversaries `battery[:SEED]` (the standard adversary battery,
// parallel), `exhaustive...` (every schedule — the paper's correctness
// quantifier) and `symbolic...` (the same answer from a BDD fixpoint,
// enumerating zero schedules — src/sym/reach.h) accept the unified sweep
// grammar of src/cli/spec.h:
//
//   exhaustive[:THREADS][:memoize][:shards=K][:budget=N]
//            [:distinct=exact|hll[:P]]
//   symbolic[:order=interleave|grouped][:engine=auto|circuit|frontier]
//
// `shards=K` runs the sweep as a K-worker *fleet*: the schedule tree is
// planned into K shard specs, K persistent worker processes are spawned, and
// the fleet controller (src/fleet/controller.h) dispatches, retries, and
// merges — the same machinery `wbsim fleet run` applies to on-disk plans.
//
// Sharding subcommands (versioned text artifacts; src/wb/shard.h):
//
//   wbsim shard-plan  <graph> <protocol> <sweep-spec> <out-base>
//   wbsim shard-run   <spec-file> <result-file> [threads]
//   wbsim shard-status <manifest-file> <dir>
//   wbsim shard-merge <result-file>...
//
// Fleet subcommands (length-prefixed frames over pipes or TCP; src/fleet/):
//
//   wbsim fleet run <manifest>... [--workers=K] [--listen=H:P] [...]
//   wbsim fleet worker [--connect=H:P[,...]] [--threads=T] [...]
//
// `--listen` also accepts dial-in workers from other hosts; `--connect`
// turns the worker's stdio frame loop into a TCP session with redial.
//
// Exit codes (src/cli/command.h): 0 PASS, 1 FAIL, 2 bad input, 3 wbsim bug.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/cli/command.h"
#include "src/graph/algorithms.h"
#include "src/graph/io.h"
#include "src/cli/runners.h"
#include "src/cli/spec.h"
#include "src/cli/verdicts.h"
#include "src/fleet/controller.h"
#include "src/fleet/socket.h"
#include "src/fleet/worker.h"
#include "src/support/check.h"
#include "src/wb/shard.h"

#if WB_FLEET_HAS_PROCESSES
#include <fcntl.h>
#include <unistd.h>
#endif

namespace {

using wb::cli::kExitFail;
using wb::cli::kExitPass;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  WB_REQUIRE_MSG(in.good(), "cannot open '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  WB_REQUIRE_MSG(!in.bad(), "cannot read '" << path << "'");
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  WB_REQUIRE_MSG(out.good(), "cannot create '" << path << "'");
  out << contents;
  out.flush();
  WB_REQUIRE_MSG(out.good(), "cannot write '" << path << "'");
}

std::uint64_t parse_u64_arg(const std::string& field, const std::string& what) {
  return wb::cli::parse_u64(field, what);
}

/// Pop every `--key=value` option named in `keys` out of `args` (in place)
/// and return the values by key; unknown `--` arguments are rejected.
std::vector<std::string> take_options(
    std::vector<std::string>& args, const std::vector<std::string>& keys,
    std::vector<std::string>* values) {
  values->assign(keys.size(), "");
  std::vector<std::string> rest;
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) != 0) {
      rest.push_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    bool known = false;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (key == keys[i]) {
        WB_REQUIRE_MSG(eq != std::string::npos, key << " needs =VALUE");
        (*values)[i] = arg.substr(eq + 1);
        known = true;
        break;
      }
    }
    WB_REQUIRE_MSG(known, "unknown option '" << arg << "'");
  }
  args = rest;
  return *values;
}

int print_report(const wb::cli::RunReport& report) {
  std::printf("%s", report.summary.c_str());
  std::printf("result     %s\n", report.correct ? "PASS" : "FAIL");
  return report.correct ? kExitPass : kExitFail;
}

int print_merged(const wb::shard::MergedResult& merged) {
  std::printf("shards     %u results merged\n", merged.shard_count);
  if (merged.faults.kind == wb::FaultKind::kAdaptive) {
    // Statistical sweeps merge verdict tallies, not schedule counts — print
    // the same `schedules`/`verdict` lines the in-process statistical report
    // uses so CI can diff a sharded adaptive sweep against the serial one.
    const wb::VerdictAccumulator verdict(merged.verdict_trials,
                                         merged.verdict_failures);
    std::printf("schedules  %llu sampled trials (statistical sweep)\n",
                static_cast<unsigned long long>(verdict.trials()));
    std::printf("verdict    %s\n", wb::verdict_summary(verdict).c_str());
  } else {
    std::printf("%s",
                wb::cli::exhaustive_summary_lines(
                    merged.executions, merged.engine_failures,
                    merged.wrong_outputs, merged.distinct_boards,
                    merged.distinct)
                    .c_str());
  }
  const bool correct =
      merged.engine_failures == 0 && merged.wrong_outputs == 0;
  std::printf("result     %s\n", correct ? "PASS" : "FAIL");
  return correct ? kExitPass : kExitFail;
}

int run_battery(const wb::Graph& g, const std::string& protocol,
                const std::string& spec) {
  const auto parts = wb::cli::split_spec(spec);
  WB_REQUIRE_MSG(parts.size() <= 2, "expected battery[:SEED]");
  const std::uint64_t seed =
      parts.size() == 2 ? parse_u64_arg(parts[1], "seed") : 1;
  const auto reports = wb::cli::run_protocol_spec_battery(protocol, g, seed);
  std::size_t correct = 0;
  for (const auto& report : reports) {
    std::printf("%s", report.summary.c_str());
    std::printf("result     %s\n\n", report.correct ? "PASS" : "FAIL");
    if (report.correct) ++correct;
  }
  std::printf("battery    %zu/%zu adversaries ok\n", correct, reports.size());
  return correct == reports.size() ? kExitPass : kExitFail;
}

// --- Fleet plumbing ----------------------------------------------------------

#if WB_FLEET_HAS_PROCESSES

std::string g_argv0;  // for self_executable on non-procfs systems

std::string self_executable() {
  char buffer[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len > 0) return std::string(buffer, static_cast<std::size_t>(len));
  return g_argv0;  // fine for relative invocations
}

struct FleetCliOptions {
  wb::fleet::FleetOptions fleet;
  std::size_t worker_threads = 1;
  std::chrono::milliseconds heartbeat_interval{200};
  std::chrono::milliseconds stall_first{0};
  /// Non-empty: also accept dial-in workers on this HOST:PORT (port 0 picks
  /// an ephemeral port, printed as `fleet listening on H:P`).
  std::string listen;
};

/// Parse the shared fleet flags out of `args` (consuming them). `defaults`
/// seeds the values so each command keeps its own worker-count default.
FleetCliOptions take_fleet_options(std::vector<std::string>& args,
                                   FleetCliOptions defaults) {
  std::vector<std::string> values;
  take_options(args,
               {"--workers", "--threads", "--heartbeat-timeout-ms",
                "--shard-deadline-ms", "--max-attempts", "--stall-first-ms",
                "--listen", "--drain-grace-ms", "--heartbeat-ms"},
               &values);
  FleetCliOptions out = defaults;
  out.listen = values[6];
  if (!values[0].empty()) {
    out.fleet.workers = parse_u64_arg(values[0], "--workers");
    WB_REQUIRE_MSG(out.fleet.workers >= 1 || !out.listen.empty(),
                   "--workers=0 only makes sense with --listen (an "
                   "all-dial-in fleet)");
  }
  if (!values[1].empty()) {
    out.worker_threads = parse_u64_arg(values[1], "--threads");
  }
  if (!values[2].empty()) {
    out.fleet.heartbeat_timeout =
        std::chrono::milliseconds(parse_u64_arg(values[2], "timeout"));
  }
  if (!values[3].empty()) {
    out.fleet.shard_deadline =
        std::chrono::milliseconds(parse_u64_arg(values[3], "deadline"));
  }
  if (!values[4].empty()) {
    out.fleet.max_attempts =
        static_cast<int>(parse_u64_arg(values[4], "--max-attempts"));
  }
  if (!values[5].empty()) {
    out.stall_first =
        std::chrono::milliseconds(parse_u64_arg(values[5], "stall"));
  }
  if (!values[7].empty()) {
    out.fleet.drain_grace =
        std::chrono::milliseconds(parse_u64_arg(values[7], "grace"));
  }
  if (!values[8].empty()) {
    out.heartbeat_interval =
        std::chrono::milliseconds(parse_u64_arg(values[8], "heartbeat"));
  }
  // The same misconfiguration the controller refuses at a remote handshake,
  // caught before a single local worker is spawned: an interval the timeout
  // cannot tolerate would suspect every sweep.
  WB_REQUIRE_MSG(out.heartbeat_interval.count() == 0 ||
                     out.heartbeat_interval < out.fleet.heartbeat_timeout,
                 "--heartbeat-ms="
                     << out.heartbeat_interval.count()
                     << " is not under --heartbeat-timeout-ms="
                     << out.fleet.heartbeat_timeout.count()
                     << " — every sweep would be suspected");
  return out;
}

/// Launch `wbsim fleet worker` children of this very binary, stdio wired to
/// the controller's pipe pairs.
wb::fleet::WorkerLauncher make_self_launcher(const FleetCliOptions& options) {
  const std::string exe = self_executable();
  const std::string threads = std::to_string(options.worker_threads);
  const std::string stall =
      std::to_string(options.stall_first.count());
  const std::string heartbeat =
      std::to_string(options.heartbeat_interval.count());
  return [exe, threads, stall, heartbeat](std::size_t index) {
    int to_child[2] = {-1, -1};
    int from_child[2] = {-1, -1};
    WB_REQUIRE_MSG(::pipe(to_child) == 0 && ::pipe(from_child) == 0,
                   "cannot create pipes for worker " << index);
    // CLOEXEC on all four ends: a later-spawned worker must not inherit a
    // sibling's pipe ends, or a SIGKILLed sibling never yields EOF/POLLHUP
    // (the inherited write end keeps the pipe open) and crash detection
    // degrades to the heartbeat-timeout path. The child's own two ends
    // survive exec via dup2 below, which clears the flag on the duplicate.
    for (const int fd : {to_child[0], to_child[1], from_child[0],
                         from_child[1]}) {
      WB_REQUIRE_MSG(::fcntl(fd, F_SETFD, FD_CLOEXEC) == 0,
                     "cannot set CLOEXEC for worker " << index);
    }
    const pid_t pid = ::fork();
    WB_REQUIRE_MSG(pid >= 0, "fork failed for worker " << index);
    if (pid == 0) {
      ::dup2(to_child[0], STDIN_FILENO);
      ::dup2(from_child[1], STDOUT_FILENO);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
      const std::string threads_arg = "--threads=" + threads;
      const std::string stall_arg = "--stall-first-ms=" + stall;
      const std::string heartbeat_arg = "--heartbeat-ms=" + heartbeat;
      const char* args[] = {exe.c_str(),          "fleet",
                            "worker",             threads_arg.c_str(),
                            stall_arg.c_str(),    heartbeat_arg.c_str(),
                            nullptr};
      ::execv(exe.c_str(), const_cast<char* const*>(args));
      ::_exit(127);
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    return wb::fleet::WorkerEndpoint{pid, to_child[1], from_child[0]};
  };
}

/// Progress lines, flushed eagerly so an observer (CI's kill-a-worker smoke
/// included) sees pids and dispatches while the sweep is still running.
wb::fleet::FleetObserver make_printing_observer() {
  wb::fleet::FleetObserver observer;
  observer.on_spawn = [](std::size_t worker, pid_t pid) {
    std::printf("fleet      worker %zu spawned (pid %ld)\n", worker,
                static_cast<long>(pid));
    std::fflush(stdout);
  };
  observer.on_dispatch = [](std::size_t worker, const std::string& plan,
                            std::uint32_t shard, int attempt) {
    std::printf("fleet      %s shard %u -> worker %zu (attempt %d)\n",
                plan.c_str(), shard, worker, attempt);
    std::fflush(stdout);
  };
  observer.on_worker_lost = [](std::size_t worker, const std::string& why) {
    std::printf("fleet      worker %zu lost: %s\n", worker, why.c_str());
    std::fflush(stdout);
  };
  observer.on_requeue = [](const std::string& plan, std::uint32_t shard,
                           const std::string& why) {
    std::printf("fleet      requeue %s shard %u: %s\n", plan.c_str(), shard,
                why.c_str());
    std::fflush(stdout);
  };
  observer.on_discard = [](std::size_t worker, const std::string& why) {
    std::printf("fleet      discarded a result from worker %zu: %s\n", worker,
                why.c_str());
    std::fflush(stdout);
  };
  observer.on_accept = [](std::size_t worker, const std::string& peer) {
    std::printf("fleet      worker %zu connection from %s\n", worker,
                peer.c_str());
    std::fflush(stdout);
  };
  observer.on_admit = [](std::size_t worker, const wb::fleet::HelloInfo& hello,
                         bool reconnected) {
    std::printf("fleet      worker %zu %s: %s (%zu threads)\n", worker,
                reconnected ? "re-admitted" : "admitted",
                hello.identity().c_str(), hello.threads);
    std::fflush(stdout);
  };
  observer.on_host_summary = [](const std::string& host, std::size_t admitted,
                                std::size_t lost, std::size_t results) {
    std::printf("fleet      host %s: %zu admitted, %zu lost, %zu results\n",
                host.c_str(), admitted, lost, results);
    std::fflush(stdout);
  };
  return observer;
}

/// Render the fleet's outcomes in the shard-merge report shape (the
/// schedules/verdict lines stay byte-diffable against `exhaustive:1`).
int print_outcomes(const std::vector<wb::fleet::PlanOutcome>& outcomes) {
  int exit_code = kExitPass;
  for (const wb::fleet::PlanOutcome& outcome : outcomes) {
    if (outcomes.size() > 1) std::printf("plan       %s\n", outcome.name.c_str());
    if (outcome.reissues > 0) {
      std::printf("fleet      %zu shard dispatches were re-issues\n",
                  outcome.reissues);
    }
    if (!outcome.completed) {
      // A sweep that could not finish (worker attrition, attempts exhausted)
      // is a runtime FAIL, not a malformed-input usage error.
      std::printf("error: plan %s failed: %s\n", outcome.name.c_str(),
                  outcome.error.c_str());
      exit_code = std::max(exit_code, kExitFail);
      continue;
    }
    if (outcome.budget_exceeded) {
      // The serial oracle throws BudgetExceededError here; keep the same
      // observable exit behavior (internal error, code 3).
      std::printf("internal error: plan %s exceeded its execution budget\n",
                  outcome.name.c_str());
      exit_code = std::max(exit_code, wb::cli::kExitBug);
      continue;
    }
    exit_code = std::max(exit_code, print_merged(outcome.merged));
  }
  return exit_code;
}

/// The `exhaustive:shards=K` path: plan in memory, serve the plan over a
/// K-worker fleet of this binary, merge. The bytes on the pipes are exactly
/// the shard-plan/shard-run artifacts a multi-host fleet would move.
int run_fleet_exhaustive(const wb::Graph& g, const std::string& protocol,
                         const wb::cli::SweepSpec& sweep) {
  wb::shard::PlanOptions popts;
  popts.max_executions = sweep.max_executions;
  popts.distinct = sweep.distinct;
  popts.faults = sweep.faults;
  const auto specs =
      wb::cli::plan_protocol_spec_shards(protocol, g, sweep.shards, popts);

  wb::fleet::PlanInputs plan;
  plan.name = "sweep";
  plan.manifest = wb::shard::make_manifest(specs);
  for (const wb::shard::ShardSpec& spec : specs) {
    plan.spec_documents.push_back(wb::shard::serialize(spec));
  }

  FleetCliOptions options;
  options.fleet.workers = sweep.shards;
  // Split the machine between the workers unless a per-worker thread count
  // was requested explicitly.
  options.worker_threads =
      sweep.threads != 0
          ? sweep.threads
          : std::max<std::size_t>(
                1, std::thread::hardware_concurrency() / sweep.shards);
  std::printf("adversary  exhaustive(fleet of %zu workers, %zu threads each)\n",
              options.fleet.workers, options.worker_threads);
  const auto outcomes =
      wb::fleet::run_fleet({plan}, options.fleet, make_self_launcher(options),
                           make_printing_observer());
  return print_outcomes(outcomes);
}

int cmd_fleet_run(std::vector<std::string> args) {
  FleetCliOptions defaults;
  const FleetCliOptions options = take_fleet_options(args, defaults);
  WB_REQUIRE_MSG(!args.empty(),
                 "usage: wbsim fleet run <manifest-file>... [--workers=K] "
                 "[--listen=HOST:PORT]");
  std::vector<wb::fleet::PlanInputs> plans;
  for (const std::string& manifest_path : args) {
    // shard-plan writes <base>.manifest next to <base>.<k>.shard — recover
    // the spec documents from that naming convention.
    wb::fleet::PlanInputs plan;
    plan.manifest = wb::shard::parse_shard_manifest(read_file(manifest_path));
    const std::string suffix = ".manifest";
    WB_REQUIRE_MSG(manifest_path.size() > suffix.size() &&
                       manifest_path.ends_with(suffix),
                   "manifest path must end in .manifest (shard-plan's "
                   "naming), got '"
                       << manifest_path << "'");
    const std::string base =
        manifest_path.substr(0, manifest_path.size() - suffix.size());
    plan.name = std::filesystem::path(base).filename().string();
    for (std::uint32_t k = 0; k < plan.manifest.shard_count; ++k) {
      plan.spec_documents.push_back(
          read_file(base + "." + std::to_string(k) + ".shard"));
    }
    plans.push_back(std::move(plan));
  }
  // --listen opens the door to dial-in workers on other hosts; --workers=0
  // with --listen runs an all-remote sweep (no local forks at all).
  std::optional<wb::fleet::SocketListener> listener;
  if (!options.listen.empty()) {
    listener.emplace(wb::fleet::parse_socket_address(options.listen));
    // The real bound port (HOST:0 asks the kernel to pick), printed eagerly
    // so scripts can parse it and point their workers' --connect at it.
    std::printf("fleet      listening on %s\n",
                wb::fleet::to_string(listener->bound_address()).c_str());
    std::fflush(stdout);
  }
  wb::fleet::WorkerLauncher launcher;
  if (options.fleet.workers > 0) launcher = make_self_launcher(options);
  const auto outcomes = wb::fleet::run_fleet(
      plans, options.fleet, launcher, make_printing_observer(),
      listener ? &*listener : nullptr);
  return print_outcomes(outcomes);
}

int cmd_fleet_worker(std::vector<std::string> args) {
  std::vector<std::string> values;
  take_options(args,
               {"--threads", "--heartbeat-ms", "--stall-first-ms", "--connect",
                "--sever-after-ms", "--hostname", "--redial-limit"},
               &values);
  WB_REQUIRE_MSG(args.empty(),
                 "usage: wbsim fleet worker [--connect=HOST:PORT[,...]] "
                 "[--threads=T] [--heartbeat-ms=N] [--stall-first-ms=N] "
                 "[--sever-after-ms=N] [--hostname=H] [--redial-limit=N]");
  wb::fleet::WorkerOptions options;
  if (!values[0].empty()) {
    options.threads = parse_u64_arg(values[0], "--threads");
  }
  if (!values[1].empty()) {
    options.heartbeat_interval =
        std::chrono::milliseconds(parse_u64_arg(values[1], "heartbeat"));
  }
  if (!values[2].empty()) {
    options.stall_first =
        std::chrono::milliseconds(parse_u64_arg(values[2], "stall"));
  }
  if (!values[4].empty()) {
    options.sever_after =
        std::chrono::milliseconds(parse_u64_arg(values[4], "sever"));
  }
  options.hostname = values[5];
  const auto runner = [](const wb::shard::ShardSpec& spec,
                         std::size_t threads) {
    return wb::cli::run_protocol_spec_shard(spec, threads);
  };
  if (values[3].empty()) {
    // The PR 6 shape: one session over stdio, the launcher owns the pipes.
    WB_REQUIRE_MSG(values[6].empty(),
                   "--redial-limit only applies with --connect");
    return wb::fleet::run_worker(STDIN_FILENO, STDOUT_FILENO, runner, options);
  }
  // Dial-in mode: cycle the address list with exponential backoff, redial
  // after a lost link, redeliver the unacknowledged result.
  wb::fleet::ConnectOptions connect;
  connect.addresses = wb::fleet::parse_socket_address_list(values[3]);
  if (!values[6].empty()) {
    connect.redial_limit = parse_u64_arg(values[6], "--redial-limit");
  }
  return wb::fleet::run_worker_connect(connect, runner, options);
}

int cmd_fleet(const std::vector<std::string>& args) {
  WB_REQUIRE_MSG(!args.empty() && (args[0] == "run" || args[0] == "worker"),
                 "usage: wbsim fleet run|worker ... (see `wbsim help fleet`)");
  std::vector<std::string> rest(args.begin() + 1, args.end());
  return args[0] == "run" ? cmd_fleet_run(std::move(rest))
                          : cmd_fleet_worker(std::move(rest));
}

#else  // !WB_FLEET_HAS_PROCESSES

int run_fleet_exhaustive(const wb::Graph&, const std::string&,
                         const wb::cli::SweepSpec&) {
  WB_REQUIRE_MSG(false,
                 "exhaustive:shards=K needs process spawning; use shard-plan/"
                 "shard-run/shard-merge manually on this platform");
  return wb::cli::kExitUsage;  // unreachable
}

int cmd_fleet(const std::vector<std::string>&) {
  WB_REQUIRE_MSG(false, "the fleet needs process spawning on this platform");
  return wb::cli::kExitUsage;  // unreachable
}

#endif  // WB_FLEET_HAS_PROCESSES

// --- Sharding subcommands ----------------------------------------------------

int cmd_shard_plan(const std::vector<std::string>& args) {
  WB_REQUIRE_MSG(args.size() == 4,
                 "usage: wbsim shard-plan <graph-spec> <protocol-spec> "
                 "<sweep-spec> <out-base>");
  const wb::Graph g = wb::cli::graph_from_spec(args[0]);
  const std::string& protocol = args[1];
  const wb::cli::SweepSpec sweep = wb::cli::sweep_from_spec(args[2]);
  WB_REQUIRE_MSG(sweep.shards >= 1,
                 "shard-plan needs a sharded sweep spec "
                 "(exhaustive:shards=K...), got '"
                     << args[2] << "'");
  const std::string& base = args[3];
  wb::shard::PlanOptions opts;
  opts.max_executions = sweep.max_executions;
  opts.distinct = sweep.distinct;
  opts.faults = sweep.faults;
  const auto specs =
      wb::cli::plan_protocol_spec_shards(protocol, g, sweep.shards, opts);
  for (const wb::shard::ShardSpec& spec : specs) {
    const std::string path =
        base + "." + std::to_string(spec.shard_index) + ".shard";
    write_file(path, wb::shard::serialize(spec));
    if (spec.faults.kind == wb::FaultKind::kAdaptive) {
      std::printf("wrote %s (statistical stride %u/%u)\n", path.c_str(),
                  spec.shard_index, spec.shard_count);
    } else if (spec.faults.kind != wb::FaultKind::kNone) {
      std::printf("wrote %s (%zu fault subtree prefixes)\n", path.c_str(),
                  spec.fault_tasks.size());
    } else {
      std::printf("wrote %s (%zu subtree prefixes)\n", path.c_str(),
                  spec.prefixes.size());
    }
  }
  const std::string manifest_path = base + ".manifest";
  write_file(manifest_path,
             wb::shard::serialize(wb::shard::make_manifest(specs)));
  std::printf("wrote %s (%zu spec hashes; serve with `wbsim fleet run %s` or "
              "track with `wbsim shard-status %s <dir>`)\n",
              manifest_path.c_str(), specs.size(), manifest_path.c_str(),
              manifest_path.c_str());
  return kExitPass;
}

int cmd_shard_run(const std::vector<std::string>& args) {
  WB_REQUIRE_MSG(args.size() >= 2 && args.size() <= 3,
                 "usage: wbsim shard-run <spec-file> <result-file> [threads]");
  const wb::shard::ShardSpec spec =
      wb::shard::parse_shard_spec(read_file(args[0]));
  const std::size_t threads =
      args.size() == 3
          ? static_cast<std::size_t>(parse_u64_arg(args[2], "threads"))
          : 0;
  const wb::shard::ShardResult result =
      wb::cli::run_protocol_spec_shard(spec, threads);
  write_file(args[1], wb::shard::serialize(result));
  if (result.budget_exceeded) {
    std::printf("shard %u/%u: budget of %llu executions exceeded\n",
                result.shard_index, result.shard_count,
                static_cast<unsigned long long>(result.max_executions));
  } else {
    const unsigned long long distinct =
        result.distinct.kind == wb::DistinctKind::kExact
            ? result.board_hashes.size()
            : (result.hll.has_value() ? result.hll->estimate() : 0);
    std::printf(
        "shard %u/%u: %llu executions, %s%llu distinct boards, %llu "
        "failures\n",
        result.shard_index, result.shard_count,
        static_cast<unsigned long long>(result.executions),
        result.distinct.kind == wb::DistinctKind::kExact ? "" : "~", distinct,
        static_cast<unsigned long long>(result.engine_failures +
                                        result.wrong_outputs));
  }
  return kExitPass;
}

int cmd_shard_status(const std::vector<std::string>& args) {
  WB_REQUIRE_MSG(args.size() == 2,
                 "usage: wbsim shard-status <manifest-file> <dir>");
  const wb::shard::ShardManifest manifest =
      wb::shard::parse_shard_manifest(read_file(args[0]));
  const std::filesystem::path dir = args[1];
  WB_REQUIRE_MSG(std::filesystem::is_directory(dir),
                 "'" << args[1] << "' is not a directory");

  std::string plan_hex;
  {
    char buffer[33];
    std::snprintf(buffer, sizeof buffer, "%016llx%016llx",
                  static_cast<unsigned long long>(manifest.plan.lo),
                  static_cast<unsigned long long>(manifest.plan.hi));
    plan_hex = buffer;
  }
  std::printf("manifest   plan %s — %u shards, distinct=%s, budget %llu\n",
              plan_hex.c_str(), manifest.shard_count,
              wb::to_string(manifest.distinct).c_str(),
              static_cast<unsigned long long>(manifest.max_executions));

  // Scan every *.result in the directory (sorted, so the report is
  // deterministic) and classify it against the manifest: a parseable result
  // whose plan fingerprint matches claims its shard slot; anything else is
  // foreign — another plan's result, or a corrupt file.
  std::vector<std::string> owner(manifest.shard_count);
  std::vector<std::pair<std::string, std::string>> foreign;  // file, reason
  std::vector<std::filesystem::path> candidates;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".result") {
      candidates.push_back(entry.path());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  for (const std::filesystem::path& path : candidates) {
    const std::string name = path.filename().string();
    try {
      const wb::shard::ShardResult result =
          wb::shard::parse_shard_result(read_file(path.string()));
      if (result.plan != manifest.plan) {
        foreign.emplace_back(name, "different plan fingerprint");
      } else if (result.shard_index >= manifest.shard_count) {
        // Defense in depth: the fingerprint covers the shard count, so only
        // a hand-edited file can get here — classify, don't crash.
        foreign.emplace_back(name, "shard index " +
                                       std::to_string(result.shard_index) +
                                       " outside the manifest's " +
                                       std::to_string(manifest.shard_count));
      } else if (!owner[result.shard_index].empty()) {
        foreign.emplace_back(
            name, "duplicate of shard " + std::to_string(result.shard_index) +
                      " (already claimed by " + owner[result.shard_index] +
                      ")");
      } else {
        owner[result.shard_index] = name;
      }
    } catch (const wb::DataError&) {
      foreign.emplace_back(name, "unparseable result file");
    }
  }

  std::uint32_t present = 0;
  for (std::uint32_t k = 0; k < manifest.shard_count; ++k) {
    if (!owner[k].empty()) {
      ++present;
      std::printf("shard %-4u present (%s)\n", k, owner[k].c_str());
    } else {
      std::printf("shard %-4u MISSING — re-run its .%u.shard spec on any "
                  "host\n",
                  k, k);
    }
  }
  for (const auto& [name, reason] : foreign) {
    std::printf("foreign    %s — %s\n", name.c_str(), reason.c_str());
  }
  std::printf("status     %u/%u shard results present\n", present,
              manifest.shard_count);
  return present == manifest.shard_count ? kExitPass : kExitFail;
}

int cmd_shard_merge(const std::vector<std::string>& args) {
  WB_REQUIRE_MSG(!args.empty(), "usage: wbsim shard-merge <result-file>...");
  std::vector<wb::shard::ShardResult> results;
  results.reserve(args.size());
  for (const std::string& path : args) {
    results.push_back(wb::shard::parse_shard_result(read_file(path)));
  }
  return print_merged(wb::shard::merge_shard_results(results));
}

// --- Graph utilities ---------------------------------------------------------

int cmd_graph_gen(const std::vector<std::string>& args) {
  WB_REQUIRE_MSG(args.size() >= 1 && args.size() <= 2,
                 "usage: wbsim graph gen <graph-spec> [FILE]\n\n"
                     << wb::cli::graph_spec_help());
  const wb::Graph g = wb::cli::graph_from_spec(args[0]);
  if (args.size() == 2) {
    std::ofstream out(args[1], std::ios::binary | std::ios::trunc);
    WB_REQUIRE_MSG(out.good(), "cannot create '" << args[1] << "'");
    wb::write_edge_list(g, out);
    out.flush();
    WB_REQUIRE_MSG(out.good(), "cannot write '" << args[1] << "'");
    std::fprintf(stderr, "wrote %s: n=%zu m=%zu\n", args[1].c_str(),
                 g.node_count(), g.edge_count());
  } else {
    wb::write_edge_list(g, std::cout);
    std::cout.flush();
  }
  return kExitPass;
}

int cmd_graph_stats(const std::vector<std::string>& args) {
  WB_REQUIRE_MSG(args.size() == 1,
                 "usage: wbsim graph stats <FILE|graph-spec>");
  // A bare path loads through the streaming reader; any spec works too.
  wb::EdgeListLoadStats load;
  wb::Graph g(0);
  if (std::filesystem::is_regular_file(args[0])) {
    std::ifstream in(args[0], std::ios::binary);
    WB_REQUIRE_MSG(in.is_open(), "cannot open '" << args[0] << "'");
    g = wb::read_edge_list(in, {}, &load);
    std::printf("file       %s (%zu bytes/pass, %s)\n", args[0].c_str(),
                load.bytes_read, load.two_pass ? "two-pass" : "buffered");
    if (load.build.self_loops_dropped + load.build.duplicates_dropped > 0) {
      std::printf("dropped    %zu self-loops, %zu duplicates\n",
                  load.build.self_loops_dropped,
                  load.build.duplicates_dropped);
    }
  } else {
    g = wb::cli::graph_from_spec(args[0]);
  }
  const std::size_t n = g.node_count();
  const std::size_t m = g.edge_count();
  std::printf("nodes      %zu\n", n);
  std::printf("edges      %zu\n", m);
  std::printf("memory     %zu bytes (CSR)\n", g.memory_bytes());
  if (n == 0) return kExitPass;

  // Degree histogram in power-of-two buckets (0, 1, 2-3, 4-7, ...).
  std::size_t max_degree = 0, isolated = 0;
  std::vector<std::size_t> buckets;
  for (wb::NodeId v = 1; v <= n; ++v) {
    const std::size_t d = g.degree(v);
    max_degree = std::max(max_degree, d);
    if (d == 0) ++isolated;
    std::size_t b = 0;
    while ((std::size_t{2} << b) <= d) ++b;  // d in [2^b, 2^{b+1}) for d>=1
    if (d == 0) b = 0;
    if (buckets.size() <= b) buckets.resize(b + 1, 0);
    if (d > 0) ++buckets[b];
  }
  std::printf("degree     avg %.2f, max %zu, isolated %zu\n",
              n == 0 ? 0.0 : 2.0 * static_cast<double>(m) /
                                 static_cast<double>(n),
              max_degree, isolated);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const std::size_t lo = std::size_t{1} << b;
    const std::size_t hi = (std::size_t{2} << b) - 1;
    char range[32];
    if (lo == hi) {
      std::snprintf(range, sizeof range, "%zu", lo);
    } else {
      std::snprintf(range, sizeof range, "%zu-%zu", lo, hi);
    }
    std::printf("  deg %-12s %zu nodes\n", range, buckets[b]);
  }
  const wb::Components comp = wb::connected_components(g);
  std::printf("components %zu%s\n", comp.count,
              comp.count == 1 ? " (connected)" : "");
  return kExitPass;
}

int cmd_graph(const std::vector<std::string>& args) {
  WB_REQUIRE_MSG(!args.empty() && (args[0] == "gen" || args[0] == "stats"),
                 "usage: wbsim graph gen|stats ... (see `wbsim help graph`)");
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  return args[0] == "gen" ? cmd_graph_gen(rest) : cmd_graph_stats(rest);
}

// --- The verdict matrix ------------------------------------------------------

int cmd_verdicts(std::vector<std::string> args) {
  std::vector<std::string> values;
  take_options(args, {"--out", "--threads"}, &values);
  const std::string& out_path = values[0];
  const std::size_t threads =
      values[1].empty()
          ? 0
          : static_cast<std::size_t>(parse_u64_arg(values[1], "threads"));
  WB_REQUIRE_MSG(args.size() <= 1,
                 "usage: wbsim verdicts [FILTER] [--out=FILE] [--threads=T]");
  const std::string filter = args.empty() ? "" : args[0];
  const std::string matrix =
      wb::cli::generate_verdict_matrix(filter, threads);
  if (!out_path.empty()) {
    write_file(out_path, matrix);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::printf("%s", matrix.c_str());
  }
  return kExitPass;
}

// --- The commandless (classic) invocation ------------------------------------

int cmd_classic(const std::vector<std::string>& all_args) {
  std::vector<std::string> args;
  bool counterexample = false;
  for (const std::string& arg : all_args) {
    if (arg == "--counterexample") {
      counterexample = true;
    } else {
      args.push_back(arg);
    }
  }
  WB_REQUIRE_MSG(args.size() >= 2 && args.size() <= 3,
                 "usage: wbsim <graph-spec> <protocol-spec> [adversary-spec] "
                 "[--counterexample] (see `wbsim help`)\n\n"
                     << wb::cli::graph_spec_help() << "\n\n"
                     << wb::cli::protocol_spec_help() << "\n\n"
                     << wb::cli::adversary_spec_help());
  const wb::Graph g = wb::cli::graph_from_spec(args[0]);
  const std::string adversary_spec = args.size() == 3 ? args[2] : "first";
  if (wb::cli::split_spec(adversary_spec)[0] == "battery") {
    WB_REQUIRE_MSG(!counterexample,
                   "--counterexample needs an exhaustive adversary spec");
    return run_battery(g, args[1], adversary_spec);
  }
  if (wb::cli::is_symbolic_spec(adversary_spec)) {
    WB_REQUIRE_MSG(!counterexample,
                   "--counterexample needs an exhaustive adversary spec "
                   "(the symbolic backend enumerates no schedules)");
    const wb::cli::SymbolicSpec symbolic =
        wb::cli::symbolic_from_spec(adversary_spec);
    wb::cli::SymbolicRunOptions opts;
    opts.order = symbolic.order;
    opts.engine = symbolic.engine;
    return print_report(wb::cli::run_protocol_spec_symbolic(args[1], g, opts));
  }
  if (wb::cli::is_exhaustive_spec(adversary_spec)) {
    const wb::cli::SweepSpec sweep = wb::cli::sweep_from_spec(adversary_spec);
    if (sweep.shards > 0) {
      WB_REQUIRE_MSG(!counterexample,
                     "--counterexample is in-process only; use "
                     "exhaustive[:THREADS]");
      return run_fleet_exhaustive(g, args[1], sweep);
    }
    WB_REQUIRE_MSG(!counterexample ||
                       sweep.faults.kind == wb::FaultKind::kNone,
                   "--counterexample is fault-free only (drop the faults= "
                   "option)");
    WB_REQUIRE_MSG(!counterexample || !sweep.memoize,
                   "--counterexample does not combine with memoize");
    wb::cli::ExhaustiveRunOptions opts;
    opts.threads = sweep.threads;
    opts.max_executions = sweep.max_executions;
    opts.counterexample = counterexample;
    opts.distinct = sweep.distinct;
    opts.faults = sweep.faults;
    opts.memoize = sweep.memoize;
    return print_report(
        wb::cli::run_protocol_spec_exhaustive(args[1], g, opts));
  }
  WB_REQUIRE_MSG(!counterexample,
                 "--counterexample needs an exhaustive adversary spec");
  auto adversary = wb::cli::adversary_from_spec(adversary_spec, g);
  return print_report(wb::cli::run_protocol_spec(args[1], g, *adversary));
}

wb::cli::CommandRegistry build_registry() {
  wb::cli::CommandRegistry registry("wbsim");
  registry.set_default(wb::cli::Command{
      "",
      "specs — " + wb::cli::graph_spec_help() + "\n" +
          wb::cli::adversary_spec_help() +
          "\nsweeps: exhaustive[:THREADS][:memoize][:shards=K][:budget=N]"
          "[:faults=F][:distinct=exact|hll[:P]]"
          "\n        symbolic[:order=interleave|grouped]"
          "[:engine=auto|circuit|frontier]"
          "\nfaults: none crash:F corrupt:NUM/DEN[:SEED] "
          "adaptive:SEED[:TRIALS]",
      "wbsim <graph-spec> <protocol-spec> [adversary-spec] "
      "[--counterexample]",
      cmd_classic});
  registry.add(wb::cli::Command{
      "shard-plan",
      "partition an exhaustive sweep into K self-describing shard specs "
      "plus a tracking manifest",
      "wbsim shard-plan <graph-spec> <protocol-spec> <sweep-spec> <out-base>"
      "\n\nThe sweep spec must name a shard count — e.g. "
      "exhaustive:shards=4:budget=100000:distinct=hll:14 or "
      "exhaustive:shards=2:faults=crash:1.\nWrites "
      "<out-base>.<k>.shard for k = 0..K-1 and <out-base>.manifest.\n"
      "Crash/corruption sweeps partition (world, subtree) fault tasks; "
      "adaptive sweeps stride their\nsampled trials across the shards "
      "(shard k runs trials k, k+K, ...).",
      cmd_shard_plan});
  registry.add(wb::cli::Command{
      "shard-run",
      "sweep one shard spec file and write its result file",
      "wbsim shard-run <spec-file> <result-file> [threads]\n\nthreads: 0 = "
      "one per hardware thread (default), 1 = serial.",
      cmd_shard_run});
  registry.add(wb::cli::Command{
      "shard-status",
      "classify a directory's *.result files against a manifest "
      "(present / missing / foreign)",
      "wbsim shard-status <manifest-file> <dir>\n\nExit 0 iff every shard "
      "of the manifest has a matching result in <dir>.",
      cmd_shard_status});
  registry.add(wb::cli::Command{
      "shard-merge",
      "merge a complete result set into the sweep's totals "
      "(byte-identical to the exhaustive:1 report)",
      "wbsim shard-merge <result-file>...",
      cmd_shard_merge});
  registry.add(wb::cli::Command{
      "verdicts",
      "regenerate the zoo x failure-model verdict matrix "
      "(tests/wb/data/verdicts.golden)",
      "wbsim verdicts [FILTER] [--out=FILE] [--threads=T]\n\n"
      "Sweeps every zoo protocol under every failure model — none, crash:1, "
      "corrupt:1/8:1,\nadaptive:7:256 — exhaustively where the schedule/world "
      "space fits the per-cell budget\nand statistically (sampled trials, "
      "Wilson 95% CI) where it does not, and prints the\n`wb-verdicts v1` "
      "text matrix. FILTER restricts rows to protocol specs containing "
      "the\nsubstring. The committed golden is regenerated with `wbsim "
      "verdicts --out=tests/wb/data/verdicts.golden`\nand diffed byte-exact "
      "by CI and tests/cli/verdicts_test.cpp.",
      cmd_verdicts});
  registry.add(wb::cli::Command{
      "graph",
      "generate edge-list files from any graph spec, or report a graph's "
      "shape (n/m, degree histogram, components)",
      "wbsim graph gen <graph-spec> [FILE]\n"
      "wbsim graph stats <FILE|graph-spec>\n\n"
      "`gen` streams the \"n m\" + pairs edge-list format to stdout (or "
      "FILE) without\nmaterializing the text — rmat:20:16:1 pipes a "
      "~16M-edge instance. `stats` loads\na file through the streaming "
      "reader (tolerant of unsorted/duplicate/reversed\npairs; hard header "
      "limits) and prints nodes, edges, CSR bytes, a power-of-two\ndegree "
      "histogram, and the component count.\n\n" +
          wb::cli::graph_spec_help(),
      cmd_graph});
  registry.add(wb::cli::Command{
      "fleet",
      "serve shard plans over a fault-tolerant fleet of persistent worker "
      "processes (see README: Fleet controller)",
      "wbsim fleet run <manifest-file>... [--workers=K] [--threads=T]\n"
      "                [--heartbeat-timeout-ms=N] [--shard-deadline-ms=N]\n"
      "                [--max-attempts=N] [--stall-first-ms=N]\n"
      "                [--listen=HOST:PORT] [--drain-grace-ms=N] "
      "[--heartbeat-ms=N]\n"
      "wbsim fleet worker [--connect=HOST:PORT[,...]] [--threads=T] "
      "[--heartbeat-ms=N]\n"
      "                [--stall-first-ms=N] [--sever-after-ms=N] "
      "[--hostname=H] [--redial-limit=N]\n\n"
      "`fleet run` loads each <base>.manifest plus its <base>.<k>.shard "
      "specs (shard-plan's naming),\nspawns --workers persistent `fleet "
      "worker` processes of this binary, dispatches shard specs as\n"
      "length-prefixed frames over pipes, re-issues timed-out or lost "
      "shards with exponential backoff,\nand merges under the "
      "plan-fingerprint guard — killing a worker mid-sweep changes "
      "nothing in the\nmerged report. With --listen the controller also "
      "accepts dial-in workers over TCP (port 0\npicks an ephemeral port, "
      "printed as `fleet listening on H:P`); --workers=0 plus --listen "
      "runs\nan all-remote sweep. A lost remote link costs no respawn "
      "budget: its shards are requeued after\n--drain-grace-ms so a "
      "redialing worker can redeliver its finished result instead of "
      "re-sweeping.\n\n`fleet worker` is the frame loop on stdin/stdout "
      "(spawned by `fleet run`) or, with --connect,\na TCP session that "
      "redials with exponential backoff across the address list; "
      "--redial-limit\ngives up (exit 1) after N failed passes. "
      "--stall-first-ms delays the first sweep and\n--sever-after-ms "
      "drops the link mid-session — fault-injection windows for kill and "
      "partition\ntests. --hostname overrides the advertised identity "
      "(hello v2: host/pid).",
      cmd_fleet});
  return registry;
}

}  // namespace

int main(int argc, char** argv) {
#if WB_FLEET_HAS_PROCESSES
  g_argv0 = argv[0];
#endif
  return build_registry().main(argc, argv);
}
