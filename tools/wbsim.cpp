// wbsim — run any protocol of the library on any generated graph under any
// adversary, from the command line.
//
//   wbsim <graph-spec> <protocol-spec> [adversary-spec]
//
//   wbsim kdeg:200:3:20:7 build-degenerate:3 random:5
//   wbsim cgnp:150:1/8:3  sync-bfs          maxdeg
//   wbsim twocliques:16   rand-two-cliques:99
//   wbsim ceob:80:1/6:2   eob-bfs           last
//
// Exit code 0 iff the run executed and the output validated against the
// centralized reference algorithms.
#include <cstdio>

#include "src/cli/runners.h"
#include "src/cli/spec.h"
#include "src/support/check.h"

namespace {

void usage() {
  std::printf(
      "usage: wbsim <graph-spec> <protocol-spec> [adversary-spec]\n\n%s\n\n"
      "%s\n\n%s\n",
      wb::cli::graph_spec_help().c_str(),
      wb::cli::protocol_spec_help().c_str(),
      wb::cli::adversary_spec_help().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4 || std::string(argv[1]) == "--help") {
    usage();
    return argc >= 2 && std::string(argv[1]) == "--help" ? 0 : 2;
  }
  try {
    const wb::Graph g = wb::cli::graph_from_spec(argv[1]);
    auto adversary =
        wb::cli::adversary_from_spec(argc == 4 ? argv[3] : "first", g);
    const wb::cli::RunReport report =
        wb::cli::run_protocol_spec(argv[2], g, *adversary);
    std::printf("%s", report.summary.c_str());
    std::printf("result     %s\n", report.correct ? "PASS" : "FAIL");
    return report.correct ? 0 : 1;
  } catch (const wb::DataError& e) {
    std::printf("error: %s\n", e.what());
    return 2;
  } catch (const wb::LogicError& e) {
    std::printf("internal error: %s\n", e.what());
    return 3;
  }
}
