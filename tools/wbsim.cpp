// wbsim — run any protocol of the library on any generated graph under any
// adversary, from the command line.
//
//   wbsim <graph-spec> <protocol-spec> [adversary-spec] [--counterexample]
//
//   wbsim kdeg:200:3:20:7 build-degenerate:3 random:5
//   wbsim cgnp:150:1/8:3  sync-bfs          maxdeg
//   wbsim twocliques:16   rand-two-cliques:99
//   wbsim ceob:80:1/6:2   eob-bfs           last
//
// The special adversary-spec `battery[:SEED]` runs the protocol under the
// whole standard adversary battery, fanned out across all cores through the
// batch engine:
//
//   wbsim cgnp:400:1/8:3  sync-bfs          battery:7
//
// The special adversary-spec `exhaustive[:THREADS]` visits *every* adversary
// schedule (the paper's correctness quantifier — small n only), partitioned
// across the shared worker pool (THREADS omitted or 0 = all cores, 1 =
// serial). `--counterexample` additionally reports the smallest-prefix
// failing schedule, deterministically at any thread count:
//
//   wbsim twocliques:4    two-cliques       exhaustive
//   wbsim path:4          broken-first:1    exhaustive:1 --counterexample
//
// `exhaustive:shards=K[:THREADS]` runs the same sweep as K local worker
// *processes* (plan → spawn K `wbsim shard-run` children → merge), the
// one-machine rehearsal of the fleet workflow below:
//
//   wbsim twocliques:4    two-cliques       exhaustive:shards=4
//
// Sharding subcommands — the distributable workflow (specs and results are
// versioned text files; see src/wb/shard.h for the determinism contract):
//
//   wbsim shard-plan <graph-spec> <protocol-spec> <K> <out-base> [max-execs]
//       writes <out-base>.<k>.shard for k = 0..K-1
//   wbsim shard-run <spec-file> <result-file> [threads]
//       sweeps one shard (threads: 0 = all cores) and writes its result
//   wbsim shard-merge <result-file>...
//       merges a complete result set; the schedules/verdict lines are
//       byte-identical to what `exhaustive:1` prints for the same instance
//
// Exit code 0 iff every run executed and the output validated against the
// centralized reference algorithms.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define WBSIM_HAS_PROCESSES 1
#else
#define WBSIM_HAS_PROCESSES 0
#endif

#include "src/cli/runners.h"
#include "src/cli/spec.h"
#include "src/support/check.h"
#include "src/wb/shard.h"

namespace {

void usage() {
  std::printf(
      "usage: wbsim <graph-spec> <protocol-spec> [adversary-spec] "
      "[--counterexample]\n"
      "       wbsim shard-plan <graph-spec> <protocol-spec> <K> <out-base> "
      "[max-executions]\n"
      "       wbsim shard-run <spec-file> <result-file> [threads]\n"
      "       wbsim shard-merge <result-file>...\n\n%s\n\n"
      "%s\n\n%s\n           battery[:SEED] (full battery, parallel)\n"
      "           exhaustive[:THREADS] (every schedule, parallel; small n)\n"
      "           exhaustive:shards=K[:THREADS] (every schedule, K worker "
      "processes)\n",
      wb::cli::graph_spec_help().c_str(),
      wb::cli::protocol_spec_help().c_str(),
      wb::cli::adversary_spec_help().c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  WB_REQUIRE_MSG(in.good(), "cannot open '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  WB_REQUIRE_MSG(!in.bad(), "cannot read '" << path << "'");
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  WB_REQUIRE_MSG(out.good(), "cannot create '" << path << "'");
  out << contents;
  out.flush();
  WB_REQUIRE_MSG(out.good(), "cannot write '" << path << "'");
}

int run_battery(const wb::Graph& g, const std::string& protocol,
                const std::string& spec) {
  const auto parts = wb::cli::split_spec(spec);
  WB_REQUIRE_MSG(parts.size() <= 2, "expected battery[:SEED]");
  const std::uint64_t seed =
      parts.size() == 2 ? wb::cli::parse_u64(parts[1], "seed") : 1;
  const auto reports = wb::cli::run_protocol_spec_battery(protocol, g, seed);
  std::size_t correct = 0;
  for (const auto& report : reports) {
    std::printf("%s", report.summary.c_str());
    std::printf("result     %s\n\n", report.correct ? "PASS" : "FAIL");
    if (report.correct) ++correct;
  }
  std::printf("battery    %zu/%zu adversaries ok\n", correct, reports.size());
  return correct == reports.size() ? 0 : 1;
}

int print_report(const wb::cli::RunReport& report) {
  std::printf("%s", report.summary.c_str());
  std::printf("result     %s\n", report.correct ? "PASS" : "FAIL");
  return report.correct ? 0 : 1;
}

// --- Sharding subcommands ----------------------------------------------------

int cmd_shard_plan(int argc, char** argv) {
  WB_REQUIRE_MSG(argc >= 6 && argc <= 7,
                 "usage: wbsim shard-plan <graph-spec> <protocol-spec> <K> "
                 "<out-base> [max-executions]");
  const wb::Graph g = wb::cli::graph_from_spec(argv[2]);
  const std::string protocol = argv[3];
  const std::size_t shards = static_cast<std::size_t>(
      wb::cli::parse_u64(argv[4], "shard count"));
  const std::string base = argv[5];
  wb::shard::PlanOptions opts;
  if (argc == 7) {
    opts.max_executions = wb::cli::parse_u64(argv[6], "max-executions");
  }
  const auto specs =
      wb::cli::plan_protocol_spec_shards(protocol, g, shards, opts);
  for (const wb::shard::ShardSpec& spec : specs) {
    const std::string path =
        base + "." + std::to_string(spec.shard_index) + ".shard";
    write_file(path, wb::shard::serialize(spec));
    std::printf("wrote %s (%zu subtree prefixes)\n", path.c_str(),
                spec.prefixes.size());
  }
  return 0;
}

int cmd_shard_run(int argc, char** argv) {
  WB_REQUIRE_MSG(argc >= 4 && argc <= 5,
                 "usage: wbsim shard-run <spec-file> <result-file> [threads]");
  const wb::shard::ShardSpec spec =
      wb::shard::parse_shard_spec(read_file(argv[2]));
  const std::size_t threads =
      argc == 5 ? static_cast<std::size_t>(
                      wb::cli::parse_u64(argv[4], "threads"))
                : 0;
  const wb::shard::ShardResult result =
      wb::cli::run_protocol_spec_shard(spec, threads);
  write_file(argv[3], wb::shard::serialize(result));
  if (result.budget_exceeded) {
    std::printf("shard %u/%u: budget of %llu executions exceeded\n",
                result.shard_index, result.shard_count,
                static_cast<unsigned long long>(result.max_executions));
  } else {
    std::printf(
        "shard %u/%u: %llu executions, %zu distinct boards, %llu failures\n",
        result.shard_index, result.shard_count,
        static_cast<unsigned long long>(result.executions),
        result.board_hashes.size(),
        static_cast<unsigned long long>(result.engine_failures +
                                        result.wrong_outputs));
  }
  return 0;
}

int print_merged(const wb::shard::MergedResult& merged) {
  std::printf("shards     %u results merged\n", merged.shard_count);
  std::printf("%s",
              wb::cli::exhaustive_summary_lines(
                  merged.executions, merged.engine_failures,
                  merged.wrong_outputs, merged.distinct_boards)
                  .c_str());
  const bool correct =
      merged.engine_failures == 0 && merged.wrong_outputs == 0;
  std::printf("result     %s\n", correct ? "PASS" : "FAIL");
  return correct ? 0 : 1;
}

int cmd_shard_merge(int argc, char** argv) {
  WB_REQUIRE_MSG(argc >= 3, "usage: wbsim shard-merge <result-file>...");
  std::vector<wb::shard::ShardResult> results;
  results.reserve(static_cast<std::size_t>(argc - 2));
  for (int i = 2; i < argc; ++i) {
    results.push_back(wb::shard::parse_shard_result(read_file(argv[i])));
  }
  return print_merged(wb::shard::merge_shard_results(results));
}

// --- Local multi-process orchestration (exhaustive:shards=K) -----------------

#if WBSIM_HAS_PROCESSES

std::string self_executable(const char* argv0) {
  char buffer[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len > 0) return std::string(buffer, static_cast<std::size_t>(len));
  return argv0;  // non-procfs fallback; fine for relative invocations
}

int run_sharded_exhaustive(const wb::Graph& g, const std::string& protocol,
                           const wb::cli::ExhaustiveSpec& es,
                           const char* argv0) {
  // Plan in-process, hand each shard to a child `wbsim shard-run`, merge the
  // result files: the same bytes a fleet would move between hosts.
  wb::shard::PlanOptions popts;
  const auto specs =
      wb::cli::plan_protocol_spec_shards(protocol, g, es.shards, popts);
  char dir_template[] = "/tmp/wbsim-shards-XXXXXX";
  WB_REQUIRE_MSG(::mkdtemp(dir_template) != nullptr,
                 "cannot create temporary shard directory");
  const std::string dir = dir_template;
  const std::string exe = self_executable(argv0);
  // Split the machine between the workers unless a nonzero per-worker
  // thread count was requested explicitly (see cli::ExhaustiveSpec).
  const std::size_t worker_threads =
      es.threads != 0
          ? es.threads
          : std::max<std::size_t>(
                1, std::thread::hardware_concurrency() / es.shards);
  const std::string threads_arg = std::to_string(worker_threads);

  std::vector<std::string> spec_paths;
  std::vector<std::string> result_paths;
  std::vector<pid_t> children;
  // Every exit path — fork failure, corrupt result, the merge's budget
  // guard — must first reap whatever workers were started (no zombies, no
  // writers racing the unlink) and then remove the temporary files.
  const auto reap_workers = [&]() -> bool {
    bool workers_ok = true;
    for (std::size_t k = 0; k < children.size(); ++k) {
      int status = 0;
      ::waitpid(children[k], &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "shard worker %zu failed (status %d)\n", k,
                     status);
        workers_ok = false;
      }
    }
    children.clear();
    return workers_ok;
  };
  const auto cleanup_files = [&] {
    for (const std::string& path : spec_paths) ::unlink(path.c_str());
    for (const std::string& path : result_paths) ::unlink(path.c_str());
    ::rmdir(dir.c_str());
  };

  int exit_code = 1;
  try {
    for (const wb::shard::ShardSpec& spec : specs) {
      const std::string tag = std::to_string(spec.shard_index);
      spec_paths.push_back(dir + "/" + tag + ".shard");
      result_paths.push_back(dir + "/" + tag + ".result");
      write_file(spec_paths.back(), wb::shard::serialize(spec));
    }
    for (std::size_t k = 0; k < specs.size(); ++k) {
      const pid_t pid = ::fork();
      WB_REQUIRE_MSG(pid >= 0, "fork failed for shard worker " << k);
      if (pid == 0) {
        const char* args[] = {exe.c_str(),           "shard-run",
                              spec_paths[k].c_str(), result_paths[k].c_str(),
                              threads_arg.c_str(),   nullptr};
        ::execv(exe.c_str(), const_cast<char* const*>(args));
        std::fprintf(stderr, "exec failed for shard worker %zu\n", k);
        ::_exit(127);
      }
      children.push_back(pid);
    }
    if (reap_workers()) {
      std::vector<wb::shard::ShardResult> results;
      for (const std::string& path : result_paths) {
        results.push_back(wb::shard::parse_shard_result(read_file(path)));
      }
      std::printf("adversary  exhaustive(shards=%zu, threads=%zu per worker)\n",
                  es.shards, worker_threads);
      exit_code = print_merged(wb::shard::merge_shard_results(results));
    }
  } catch (...) {
    reap_workers();
    cleanup_files();
    throw;
  }
  cleanup_files();
  return exit_code;
}

#else  // !WBSIM_HAS_PROCESSES

int run_sharded_exhaustive(const wb::Graph&, const std::string&,
                           const wb::cli::ExhaustiveSpec&, const char*) {
  WB_REQUIRE_MSG(false,
                 "exhaustive:shards=K needs process spawning; use shard-plan/"
                 "shard-run/shard-merge manually on this platform");
  return 2;  // unreachable
}

#endif  // WBSIM_HAS_PROCESSES

int run_exhaustive(const wb::Graph& g, const std::string& protocol,
                   const std::string& spec, bool counterexample,
                   const char* argv0) {
  const wb::cli::ExhaustiveSpec es = wb::cli::exhaustive_from_spec(spec);
  if (es.shards > 0) {
    WB_REQUIRE_MSG(!counterexample,
                   "--counterexample is in-process only; use "
                   "exhaustive[:THREADS]");
    return run_sharded_exhaustive(g, protocol, es, argv0);
  }
  wb::cli::ExhaustiveRunOptions opts;
  opts.threads = es.threads;
  opts.counterexample = counterexample;
  return print_report(
      wb::cli::run_protocol_spec_exhaustive(protocol, g, opts));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2) {
      const std::string command = argv[1];
      if (command == "shard-plan") return cmd_shard_plan(argc, argv);
      if (command == "shard-run") return cmd_shard_run(argc, argv);
      if (command == "shard-merge") return cmd_shard_merge(argc, argv);
    }
    // Classic invocation: positional specs plus optional flags.
    std::vector<std::string> args;
    bool counterexample = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--counterexample") {
        counterexample = true;
      } else {
        args.push_back(arg);
      }
    }
    if (args.size() < 2 || args.size() > 3 ||
        (!args.empty() && args[0] == "--help")) {
      usage();
      return !args.empty() && args[0] == "--help" ? 0 : 2;
    }
    const wb::Graph g = wb::cli::graph_from_spec(args[0]);
    const std::string adversary_spec = args.size() == 3 ? args[2] : "first";
    if (wb::cli::split_spec(adversary_spec)[0] == "battery") {
      WB_REQUIRE_MSG(!counterexample,
                     "--counterexample needs an exhaustive adversary spec");
      return run_battery(g, args[1], adversary_spec);
    }
    if (wb::cli::is_exhaustive_spec(adversary_spec)) {
      return run_exhaustive(g, args[1], adversary_spec, counterexample,
                            argv[0]);
    }
    WB_REQUIRE_MSG(!counterexample,
                   "--counterexample needs an exhaustive adversary spec");
    auto adversary = wb::cli::adversary_from_spec(adversary_spec, g);
    return print_report(wb::cli::run_protocol_spec(args[1], g, *adversary));
  } catch (const wb::DataError& e) {
    std::printf("error: %s\n", e.what());
    return 2;
  } catch (const wb::LogicError& e) {
    std::printf("internal error: %s\n", e.what());
    return 3;
  }
}
