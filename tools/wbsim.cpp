// wbsim — run any protocol of the library on any generated graph under any
// adversary, from the command line.
//
//   wbsim <graph-spec> <protocol-spec> [adversary-spec] [--counterexample]
//
//   wbsim kdeg:200:3:20:7 build-degenerate:3 random:5
//   wbsim cgnp:150:1/8:3  sync-bfs          maxdeg
//   wbsim twocliques:16   rand-two-cliques:99
//   wbsim ceob:80:1/6:2   eob-bfs           last
//
// The special adversary-spec `battery[:SEED]` runs the protocol under the
// whole standard adversary battery, fanned out across all cores through the
// batch engine:
//
//   wbsim cgnp:400:1/8:3  sync-bfs          battery:7
//
// The special adversary-spec `exhaustive[:THREADS]` visits *every* adversary
// schedule (the paper's correctness quantifier — small n only), partitioned
// across the shared worker pool (THREADS omitted or 0 = all cores, 1 =
// serial). `--counterexample` additionally reports the smallest-prefix
// failing schedule, deterministically at any thread count:
//
//   wbsim twocliques:4    two-cliques       exhaustive
//   wbsim path:4          broken-first:1    exhaustive:1 --counterexample
//
// `exhaustive:shards=K[:THREADS]` runs the same sweep as K local worker
// *processes* (plan → spawn K `wbsim shard-run` children → merge), the
// one-machine rehearsal of the fleet workflow below:
//
//   wbsim twocliques:4    two-cliques       exhaustive:shards=4
//
// Every exhaustive form may end in `:distinct=exact|hll[:P]` selecting the
// distinct-board accumulator (src/wb/distinct.h): exact sorted-run dedup
// (default, O(distinct) memory) or a HyperLogLog estimate (2^P bytes flat,
// relative error ~1.04/sqrt(2^P)) for schedule spaces whose distinct-board
// count would not fit in memory:
//
//   wbsim twocliques:4    two-cliques       exhaustive:distinct=hll:14
//
// Sharding subcommands — the distributable workflow (specs, results, and
// manifests are versioned text files; see src/wb/shard.h for the
// determinism contract):
//
//   wbsim shard-plan <graph-spec> <protocol-spec> <K> <out-base>
//                    [max-execs] [distinct=exact|hll[:P]]
//       writes <out-base>.<k>.shard for k = 0..K-1, plus
//       <out-base>.manifest (plan fingerprint + per-spec hashes) for
//       fleet-side completion tracking
//   wbsim shard-run <spec-file> <result-file> [threads]
//       sweeps one shard (threads: 0 = all cores) and writes its result
//   wbsim shard-status <manifest-file> <dir>
//       scans <dir>'s *.result files against the manifest and reports which
//       shards are present / missing / foreign (exit 0 iff complete), so a
//       lost shard can be re-run on another host
//   wbsim shard-merge <result-file>...
//       merges a complete result set; the schedules/verdict lines are
//       byte-identical to what `exhaustive:1` prints for the same instance
//       (with the same distinct= choice)
//
// Exit code 0 iff every run executed and the output validated against the
// centralized reference algorithms.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define WBSIM_HAS_PROCESSES 1
#else
#define WBSIM_HAS_PROCESSES 0
#endif

#include "src/cli/runners.h"
#include "src/cli/spec.h"
#include "src/support/check.h"
#include "src/wb/shard.h"

namespace {

void usage() {
  std::printf(
      "usage: wbsim <graph-spec> <protocol-spec> [adversary-spec] "
      "[--counterexample]\n"
      "       wbsim shard-plan <graph-spec> <protocol-spec> <K> <out-base> "
      "[max-executions] [distinct=exact|hll[:P]]\n"
      "       wbsim shard-run <spec-file> <result-file> [threads]\n"
      "       wbsim shard-status <manifest-file> <dir>\n"
      "       wbsim shard-merge <result-file>...\n\n%s\n\n"
      "%s\n\n%s\n           battery[:SEED] (full battery, parallel)\n"
      "           exhaustive[:THREADS] (every schedule, parallel; small n)\n"
      "           exhaustive:shards=K[:THREADS] (every schedule, K worker "
      "processes)\n"
      "           either exhaustive form may end in :distinct=exact|hll[:P]\n"
      "           (distinct-board counting: exact dedup, or a HyperLogLog\n"
      "           estimate in 2^P bytes of memory)\n",
      wb::cli::graph_spec_help().c_str(),
      wb::cli::protocol_spec_help().c_str(),
      wb::cli::adversary_spec_help().c_str());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  WB_REQUIRE_MSG(in.good(), "cannot open '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  WB_REQUIRE_MSG(!in.bad(), "cannot read '" << path << "'");
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  WB_REQUIRE_MSG(out.good(), "cannot create '" << path << "'");
  out << contents;
  out.flush();
  WB_REQUIRE_MSG(out.good(), "cannot write '" << path << "'");
}

int run_battery(const wb::Graph& g, const std::string& protocol,
                const std::string& spec) {
  const auto parts = wb::cli::split_spec(spec);
  WB_REQUIRE_MSG(parts.size() <= 2, "expected battery[:SEED]");
  const std::uint64_t seed =
      parts.size() == 2 ? wb::cli::parse_u64(parts[1], "seed") : 1;
  const auto reports = wb::cli::run_protocol_spec_battery(protocol, g, seed);
  std::size_t correct = 0;
  for (const auto& report : reports) {
    std::printf("%s", report.summary.c_str());
    std::printf("result     %s\n\n", report.correct ? "PASS" : "FAIL");
    if (report.correct) ++correct;
  }
  std::printf("battery    %zu/%zu adversaries ok\n", correct, reports.size());
  return correct == reports.size() ? 0 : 1;
}

int print_report(const wb::cli::RunReport& report) {
  std::printf("%s", report.summary.c_str());
  std::printf("result     %s\n", report.correct ? "PASS" : "FAIL");
  return report.correct ? 0 : 1;
}

// --- Sharding subcommands ----------------------------------------------------

int cmd_shard_plan(int argc, char** argv) {
  WB_REQUIRE_MSG(argc >= 6 && argc <= 8,
                 "usage: wbsim shard-plan <graph-spec> <protocol-spec> <K> "
                 "<out-base> [max-executions] [distinct=exact|hll[:P]]");
  const wb::Graph g = wb::cli::graph_from_spec(argv[2]);
  const std::string protocol = argv[3];
  const std::size_t shards = static_cast<std::size_t>(
      wb::cli::parse_u64(argv[4], "shard count"));
  const std::string base = argv[5];
  wb::shard::PlanOptions opts;
  for (int i = 6; i < argc; ++i) {
    const std::string arg = argv[i];
    constexpr const char* kDistinctKey = "distinct=";
    if (arg.rfind(kDistinctKey, 0) == 0) {
      opts.distinct =
          wb::parse_distinct_config(arg.substr(std::strlen(kDistinctKey)));
    } else {
      opts.max_executions = wb::cli::parse_u64(arg, "max-executions");
    }
  }
  const auto specs =
      wb::cli::plan_protocol_spec_shards(protocol, g, shards, opts);
  for (const wb::shard::ShardSpec& spec : specs) {
    const std::string path =
        base + "." + std::to_string(spec.shard_index) + ".shard";
    write_file(path, wb::shard::serialize(spec));
    std::printf("wrote %s (%zu subtree prefixes)\n", path.c_str(),
                spec.prefixes.size());
  }
  const std::string manifest_path = base + ".manifest";
  write_file(manifest_path,
             wb::shard::serialize(wb::shard::make_manifest(specs)));
  std::printf("wrote %s (%zu spec hashes; track completion with "
              "`wbsim shard-status %s <dir>`)\n",
              manifest_path.c_str(), specs.size(), manifest_path.c_str());
  return 0;
}

// --- shard-status: manifest-driven completion tracking -----------------------

int cmd_shard_status(int argc, char** argv) {
  WB_REQUIRE_MSG(argc == 4,
                 "usage: wbsim shard-status <manifest-file> <dir>");
  const wb::shard::ShardManifest manifest =
      wb::shard::parse_shard_manifest(read_file(argv[2]));
  const std::filesystem::path dir = argv[3];
  WB_REQUIRE_MSG(std::filesystem::is_directory(dir),
                 "'" << argv[3] << "' is not a directory");

  std::string plan_hex;
  {
    char buffer[33];
    std::snprintf(buffer, sizeof buffer, "%016llx%016llx",
                  static_cast<unsigned long long>(manifest.plan.lo),
                  static_cast<unsigned long long>(manifest.plan.hi));
    plan_hex = buffer;
  }
  std::printf("manifest   plan %s — %u shards, distinct=%s, budget %llu\n",
              plan_hex.c_str(), manifest.shard_count,
              wb::to_string(manifest.distinct).c_str(),
              static_cast<unsigned long long>(manifest.max_executions));

  // Scan every *.result in the directory (sorted, so the report is
  // deterministic) and classify it against the manifest: a parseable result
  // whose plan fingerprint matches claims its shard slot; anything else is
  // foreign — another plan's result, or a corrupt file.
  std::vector<std::string> owner(manifest.shard_count);
  std::vector<std::pair<std::string, std::string>> foreign;  // file, reason
  std::vector<std::filesystem::path> candidates;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".result") {
      candidates.push_back(entry.path());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  for (const std::filesystem::path& path : candidates) {
    const std::string name = path.filename().string();
    try {
      const wb::shard::ShardResult result =
          wb::shard::parse_shard_result(read_file(path.string()));
      if (result.plan != manifest.plan) {
        foreign.emplace_back(name, "different plan fingerprint");
      } else if (result.shard_index >= manifest.shard_count) {
        // Defense in depth: the fingerprint covers the shard count, so only
        // a hand-edited file can get here — classify, don't crash.
        foreign.emplace_back(name, "shard index " +
                                       std::to_string(result.shard_index) +
                                       " outside the manifest's " +
                                       std::to_string(manifest.shard_count));
      } else if (!owner[result.shard_index].empty()) {
        foreign.emplace_back(
            name, "duplicate of shard " + std::to_string(result.shard_index) +
                      " (already claimed by " + owner[result.shard_index] +
                      ")");
      } else {
        owner[result.shard_index] = name;
      }
    } catch (const wb::DataError&) {
      foreign.emplace_back(name, "unparseable result file");
    }
  }

  std::uint32_t present = 0;
  for (std::uint32_t k = 0; k < manifest.shard_count; ++k) {
    if (!owner[k].empty()) {
      ++present;
      std::printf("shard %-4u present (%s)\n", k, owner[k].c_str());
    } else {
      std::printf("shard %-4u MISSING — re-run its .%u.shard spec on any "
                  "host\n",
                  k, k);
    }
  }
  for (const auto& [name, reason] : foreign) {
    std::printf("foreign    %s — %s\n", name.c_str(), reason.c_str());
  }
  std::printf("status     %u/%u shard results present\n", present,
              manifest.shard_count);
  return present == manifest.shard_count ? 0 : 1;
}

int cmd_shard_run(int argc, char** argv) {
  WB_REQUIRE_MSG(argc >= 4 && argc <= 5,
                 "usage: wbsim shard-run <spec-file> <result-file> [threads]");
  const wb::shard::ShardSpec spec =
      wb::shard::parse_shard_spec(read_file(argv[2]));
  const std::size_t threads =
      argc == 5 ? static_cast<std::size_t>(
                      wb::cli::parse_u64(argv[4], "threads"))
                : 0;
  const wb::shard::ShardResult result =
      wb::cli::run_protocol_spec_shard(spec, threads);
  write_file(argv[3], wb::shard::serialize(result));
  if (result.budget_exceeded) {
    std::printf("shard %u/%u: budget of %llu executions exceeded\n",
                result.shard_index, result.shard_count,
                static_cast<unsigned long long>(result.max_executions));
  } else {
    const unsigned long long distinct =
        result.distinct.kind == wb::DistinctKind::kExact
            ? result.board_hashes.size()
            : (result.hll.has_value() ? result.hll->estimate() : 0);
    std::printf(
        "shard %u/%u: %llu executions, %s%llu distinct boards, %llu "
        "failures\n",
        result.shard_index, result.shard_count,
        static_cast<unsigned long long>(result.executions),
        result.distinct.kind == wb::DistinctKind::kExact ? "" : "~", distinct,
        static_cast<unsigned long long>(result.engine_failures +
                                        result.wrong_outputs));
  }
  return 0;
}

int print_merged(const wb::shard::MergedResult& merged) {
  std::printf("shards     %u results merged\n", merged.shard_count);
  std::printf("%s",
              wb::cli::exhaustive_summary_lines(
                  merged.executions, merged.engine_failures,
                  merged.wrong_outputs, merged.distinct_boards,
                  merged.distinct)
                  .c_str());
  const bool correct =
      merged.engine_failures == 0 && merged.wrong_outputs == 0;
  std::printf("result     %s\n", correct ? "PASS" : "FAIL");
  return correct ? 0 : 1;
}

int cmd_shard_merge(int argc, char** argv) {
  WB_REQUIRE_MSG(argc >= 3, "usage: wbsim shard-merge <result-file>...");
  std::vector<wb::shard::ShardResult> results;
  results.reserve(static_cast<std::size_t>(argc - 2));
  for (int i = 2; i < argc; ++i) {
    results.push_back(wb::shard::parse_shard_result(read_file(argv[i])));
  }
  return print_merged(wb::shard::merge_shard_results(results));
}

// --- Local multi-process orchestration (exhaustive:shards=K) -----------------

#if WBSIM_HAS_PROCESSES

std::string self_executable(const char* argv0) {
  char buffer[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len > 0) return std::string(buffer, static_cast<std::size_t>(len));
  return argv0;  // non-procfs fallback; fine for relative invocations
}

int run_sharded_exhaustive(const wb::Graph& g, const std::string& protocol,
                           const wb::cli::ExhaustiveSpec& es,
                           const char* argv0) {
  // Plan in-process, hand each shard to a child `wbsim shard-run`, merge the
  // result files: the same bytes a fleet would move between hosts.
  wb::shard::PlanOptions popts;
  popts.distinct = es.distinct;
  const auto specs =
      wb::cli::plan_protocol_spec_shards(protocol, g, es.shards, popts);
  char dir_template[] = "/tmp/wbsim-shards-XXXXXX";
  WB_REQUIRE_MSG(::mkdtemp(dir_template) != nullptr,
                 "cannot create temporary shard directory");
  const std::string dir = dir_template;
  const std::string exe = self_executable(argv0);
  // Split the machine between the workers unless a nonzero per-worker
  // thread count was requested explicitly (see cli::ExhaustiveSpec).
  const std::size_t worker_threads =
      es.threads != 0
          ? es.threads
          : std::max<std::size_t>(
                1, std::thread::hardware_concurrency() / es.shards);
  const std::string threads_arg = std::to_string(worker_threads);

  std::vector<std::string> spec_paths;
  std::vector<std::string> result_paths;
  std::vector<pid_t> children;
  // Every exit path — fork failure, corrupt result, the merge's budget
  // guard — must first reap whatever workers were started (no zombies, no
  // writers racing the unlink) and then remove the temporary files.
  const auto reap_workers = [&]() -> bool {
    bool workers_ok = true;
    for (std::size_t k = 0; k < children.size(); ++k) {
      int status = 0;
      ::waitpid(children[k], &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::fprintf(stderr, "shard worker %zu failed (status %d)\n", k,
                     status);
        workers_ok = false;
      }
    }
    children.clear();
    return workers_ok;
  };
  const auto cleanup_files = [&] {
    for (const std::string& path : spec_paths) ::unlink(path.c_str());
    for (const std::string& path : result_paths) ::unlink(path.c_str());
    ::rmdir(dir.c_str());
  };

  int exit_code = 1;
  try {
    for (const wb::shard::ShardSpec& spec : specs) {
      const std::string tag = std::to_string(spec.shard_index);
      spec_paths.push_back(dir + "/" + tag + ".shard");
      result_paths.push_back(dir + "/" + tag + ".result");
      write_file(spec_paths.back(), wb::shard::serialize(spec));
    }
    for (std::size_t k = 0; k < specs.size(); ++k) {
      const pid_t pid = ::fork();
      WB_REQUIRE_MSG(pid >= 0, "fork failed for shard worker " << k);
      if (pid == 0) {
        const char* args[] = {exe.c_str(),           "shard-run",
                              spec_paths[k].c_str(), result_paths[k].c_str(),
                              threads_arg.c_str(),   nullptr};
        ::execv(exe.c_str(), const_cast<char* const*>(args));
        std::fprintf(stderr, "exec failed for shard worker %zu\n", k);
        ::_exit(127);
      }
      children.push_back(pid);
    }
    if (reap_workers()) {
      std::vector<wb::shard::ShardResult> results;
      for (const std::string& path : result_paths) {
        results.push_back(wb::shard::parse_shard_result(read_file(path)));
      }
      std::printf("adversary  exhaustive(shards=%zu, threads=%zu per worker)\n",
                  es.shards, worker_threads);
      exit_code = print_merged(wb::shard::merge_shard_results(results));
    }
  } catch (...) {
    reap_workers();
    cleanup_files();
    throw;
  }
  cleanup_files();
  return exit_code;
}

#else  // !WBSIM_HAS_PROCESSES

int run_sharded_exhaustive(const wb::Graph&, const std::string&,
                           const wb::cli::ExhaustiveSpec&, const char*) {
  WB_REQUIRE_MSG(false,
                 "exhaustive:shards=K needs process spawning; use shard-plan/"
                 "shard-run/shard-merge manually on this platform");
  return 2;  // unreachable
}

#endif  // WBSIM_HAS_PROCESSES

int run_exhaustive(const wb::Graph& g, const std::string& protocol,
                   const std::string& spec, bool counterexample,
                   const char* argv0) {
  const wb::cli::ExhaustiveSpec es = wb::cli::exhaustive_from_spec(spec);
  if (es.shards > 0) {
    WB_REQUIRE_MSG(!counterexample,
                   "--counterexample is in-process only; use "
                   "exhaustive[:THREADS]");
    return run_sharded_exhaustive(g, protocol, es, argv0);
  }
  wb::cli::ExhaustiveRunOptions opts;
  opts.threads = es.threads;
  opts.counterexample = counterexample;
  opts.distinct = es.distinct;
  return print_report(
      wb::cli::run_protocol_spec_exhaustive(protocol, g, opts));
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2) {
      const std::string command = argv[1];
      if (command == "shard-plan") return cmd_shard_plan(argc, argv);
      if (command == "shard-run") return cmd_shard_run(argc, argv);
      if (command == "shard-status") return cmd_shard_status(argc, argv);
      if (command == "shard-merge") return cmd_shard_merge(argc, argv);
    }
    // Classic invocation: positional specs plus optional flags.
    std::vector<std::string> args;
    bool counterexample = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--counterexample") {
        counterexample = true;
      } else {
        args.push_back(arg);
      }
    }
    if (args.size() < 2 || args.size() > 3 ||
        (!args.empty() && args[0] == "--help")) {
      usage();
      return !args.empty() && args[0] == "--help" ? 0 : 2;
    }
    const wb::Graph g = wb::cli::graph_from_spec(args[0]);
    const std::string adversary_spec = args.size() == 3 ? args[2] : "first";
    if (wb::cli::split_spec(adversary_spec)[0] == "battery") {
      WB_REQUIRE_MSG(!counterexample,
                     "--counterexample needs an exhaustive adversary spec");
      return run_battery(g, args[1], adversary_spec);
    }
    if (wb::cli::is_exhaustive_spec(adversary_spec)) {
      return run_exhaustive(g, args[1], adversary_spec, counterexample,
                            argv[0]);
    }
    WB_REQUIRE_MSG(!counterexample,
                   "--counterexample needs an exhaustive adversary spec");
    auto adversary = wb::cli::adversary_from_spec(adversary_spec, g);
    return print_report(wb::cli::run_protocol_spec(args[1], g, *adversary));
  } catch (const wb::DataError& e) {
    std::printf("error: %s\n", e.what());
    return 2;
  } catch (const wb::LogicError& e) {
    std::printf("internal error: %s\n", e.what());
    return 3;
  }
}
