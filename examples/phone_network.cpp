// The paper's motivating scenario (§1): a massive graph whose links are
// *relationships* — phone numbers and who-called-whom — processed by one
// tiny computing unit per node, with links that do NOT restrict
// communication. Each node publishes one O(k² log n)-bit message on the
// shared whiteboard; afterwards *any* question about the graph can be
// answered from the whiteboard alone.
//
// Call graphs are sparse (few people are hubs): we model one as a
// 3-degenerate graph, use the §3 BUILD protocol, and answer queries —
// degrees, mutual contacts, triangles ("calling cliques"), connectivity —
// from the reconstructed board, never touching the original graph again.
#include <cstdio>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/build_degenerate.h"
#include "src/wb/engine.h"

int main() {
  using namespace wb;

  const std::size_t subscribers = 400;
  const int degeneracy = 3;
  const Graph calls = random_k_degenerate(subscribers, degeneracy, 25, 99);
  std::printf("call graph: %zu subscribers, %zu call pairs\n",
              calls.node_count(), calls.edge_count());

  // Every subscriber writes one message; the adversary (the network's
  // unpredictable scheduling) picks the order.
  const BuildDegenerateProtocol protocol(degeneracy);
  RandomAdversary scheduler(4242);
  const ExecutionResult run = run_protocol(calls, protocol, scheduler);
  if (!run.ok()) {
    std::printf("protocol failed: %s\n", run.error.c_str());
    return 1;
  }
  std::printf(
      "whiteboard: %zu messages, max %zu bits each (budget %zu), %zu bits "
      "total — vs %zu bits for raw adjacency\n",
      run.board.message_count(), run.stats.max_message_bits,
      protocol.message_bit_limit(subscribers), run.stats.total_bits,
      subscribers * subscribers);

  // From here on, only the whiteboard is consulted.
  const BuildOutput decoded = protocol.output(run.board, subscribers);
  if (!decoded.has_value()) {
    std::printf("input was not %d-degenerate — rejected\n", degeneracy);
    return 1;
  }
  const Graph& g = *decoded;

  std::printf("\nqueries answered from the whiteboard alone:\n");
  NodeId hub = 1;
  for (NodeId v = 2; v <= subscribers; ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  std::printf("  busiest subscriber: #%u with %zu contacts\n", hub,
              g.degree(hub));

  const auto nb = g.neighbors(hub);
  std::size_t mutual = 0;
  for (std::size_t i = 0; i < nb.size(); ++i) {
    for (std::size_t j = i + 1; j < nb.size(); ++j) {
      if (g.has_edge(nb[i], nb[j])) ++mutual;
    }
  }
  std::printf("  contacts of #%u who also call each other: %zu pairs\n", hub,
              mutual);
  std::printf("  calling triangles in the network: %llu\n",
              static_cast<unsigned long long>(count_triangles(g)));
  const Components comps = connected_components(g);
  std::printf("  connected components: %zu\n", comps.count);
  std::printf("  exact reconstruction: %s\n", (g == calls) ? "yes" : "NO");

  std::printf(
      "\ntotal communication: %zu bits for n=%zu nodes — O(k^2 log n) per\n"
      "node as promised by Lemma 1, against the Θ(n) bits/node a full\n"
      "adjacency dump would need.\n",
      run.stats.total_bits, subscribers);
  return 0;
}
