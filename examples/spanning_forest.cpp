// Connectivity structure with one message per node (§6 of the paper):
// the SYNC[log n] BFS protocol computes a BFS spanning forest of an
// arbitrary graph — layers, parents, one root per component — while every
// node writes only ~6·log2(n) bits, once, in an order chosen by an
// adversary.
//
// The example prints the forest for a small multi-component graph and then
// stress-checks a larger one under the whole adversary battery.
#include <cstdio>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/wb/engine.h"

int main() {
  using namespace wb;

  // A deliberately awkward graph: a triangle, a path, and two hermits.
  GraphBuilder b(12);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);   // odd cycle — the case ASYNC protocols cannot finish
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(6, 7);
  b.add_edge(7, 8);
  b.add_edge(8, 9);
  b.add_edge(6, 9);   // even cycle component
  // 10, 11, 12 isolated.
  const Graph g = b.build();

  const SyncBfsProtocol protocol;
  LastAdversary adversary;  // always the largest-ID candidate
  const ExecutionResult run = run_protocol(g, protocol, adversary);
  if (!run.ok()) {
    std::printf("failed: %s\n", run.error.c_str());
    return 1;
  }
  const BfsProtocolOutput forest = protocol.output(run.board, g.node_count());

  std::printf("BFS forest from the whiteboard (%zu bits total):\n",
              run.stats.total_bits);
  std::printf("  roots:");
  for (NodeId r : forest.roots) std::printf(" %u", r);
  std::printf("\n  node: layer parent\n");
  for (NodeId v = 1; v <= g.node_count(); ++v) {
    std::printf("  %4u: %5d %6u\n", v, forest.layer[v - 1],
                forest.parent[v - 1]);
  }
  std::printf("  valid BFS forest: %s\n",
              is_valid_bfs_forest(g, forest.layer, forest.parent) ? "yes"
                                                                  : "NO");

  // Stress: 300 nodes, all adversaries, layers must equal reference BFS.
  const std::size_t n = 300;
  const Graph big = connected_gnp(n, 2, n, 17);
  const BfsForest ref = bfs_forest(big);
  std::printf("\nstress n=%zu:", n);
  for (auto& adv : standard_adversaries(big, 3)) {
    const ExecutionResult r = run_protocol(big, protocol, *adv);
    const bool ok = r.ok() && protocol.output(r.board, n).layer == ref.layer;
    std::printf(" %s=%s", adv->name().c_str(), ok ? "ok" : "FAIL");
  }
  std::printf("\n");
  return 0;
}
