// Quickstart: the complete life of a whiteboard protocol in ~40 lines.
//
//   1. make a labeled graph (here: a random forest on 12 nodes);
//   2. pick a protocol (BUILD for forests — §3.1 of the paper, SIMASYNC);
//   3. run it in the engine under an adversary of your choice;
//   4. decode the final whiteboard with the protocol's output function.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/protocols/build_forest.h"
#include "src/wb/engine.h"

int main() {
  using namespace wb;

  // 1. The input graph. Each node knows only n, its ID and its neighbors.
  const std::size_t n = 12;
  const Graph forest = random_forest(n, 80, /*seed=*/2026);
  std::printf("input forest (edge list):\n%s\n", to_edge_list(forest).c_str());

  // 2. The protocol: every node writes (ID, degree, sum of neighbor IDs) —
  //    under 4·log2(n) bits — simultaneously and without reading the board.
  const BuildForestProtocol protocol;
  std::printf("message budget: %zu bits per node\n",
              protocol.message_bit_limit(n));

  // 3. The adversary decides who writes next; protocols must work for every
  //    strategy. Try a few.
  for (auto& adversary : standard_adversaries(forest, /*seed=*/7)) {
    const ExecutionResult run = run_protocol(forest, protocol, *adversary);
    if (!run.ok()) {
      std::printf("%-12s FAILED: %s\n", adversary->name().c_str(),
                  run.error.c_str());
      return 1;
    }

    // 4. Decode: the output function sees nothing but the whiteboard.
    const BuildOutput rebuilt = protocol.output(run.board, n);
    std::printf(
        "%-12s %zu writes, %zu rounds, max %zu bits/msg, %zu bits total — "
        "reconstruction %s\n",
        adversary->name().c_str(), run.stats.writes, run.stats.rounds,
        run.stats.max_message_bits, run.stats.total_bits,
        (rebuilt.has_value() && *rebuilt == forest) ? "exact" : "WRONG");
  }

  std::printf(
      "\nEvery adversary saw different write orders but the same message\n"
      "multiset — the SIMASYNC decoder is order-insensitive by design.\n");
  return 0;
}
