// The hierarchy, live (§5 of the paper): the same problems run in models on
// both sides of each separation.
//
//  1. rooted MIS separates SIMASYNC from SIMSYNC (Thm 5/6): the greedy
//     SIMSYNC protocol succeeds under every schedule; a naive SIMASYNC
//     attempt (same messages, but composed before anything is on the board)
//     produces broken sets the moment the graph has an edge between two
//     would-be members.
//  2. EOB-BFS separates SIMSYNC from ASYNC (Thm 7/8): free activation is
//     what sequences the layers; forcing everyone active up front (the
//     simultaneous discipline) destroys the layer certificates.
//  3. Corollary 4's boundary: the bipartite ASYNC protocol deadlocks two
//     layers past an odd edge, while SYNC's d0 bookkeeping sails through.
#include <cstdio>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/mis.h"
#include "src/support/bits.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

/// What Thm 6 says cannot work: the greedy MIS messages composed in
/// SIMASYNC style — from the *empty* board — so nobody sees anyone's
/// decision and adjacent nodes happily both claim membership.
class NaiveSimAsyncMis final : public SimAsyncProtocol<MisOutput> {
 public:
  explicit NaiveSimAsyncMis(NodeId root) : root_(root) {}
  std::size_t message_bit_limit(std::size_t n) const override {
    return bits_for_id(n) + 1;
  }
  Bits compose_initial(const LocalView& view) const override {
    BitWriter w;
    w.write_uint(view.id() - 1, bits_for_id(view.n()));
    // Without board feedback the only local rule is "enter unless adjacent
    // to the root".
    w.write_bit(view.id() == root_ || !view.has_neighbor(root_));
    return w.take();
  }
  MisOutput output(const Whiteboard& board, std::size_t n) const override {
    MisOutput out;
    for (const Bits& m : board.messages()) {
      BitReader r(m);
      const NodeId id = static_cast<NodeId>(r.read_uint(bits_for_id(n)) + 1);
      if (r.read_bit()) out.push_back(id);
    }
    return out;
  }
  std::string name() const override { return "naive-simasync-mis"; }

 private:
  NodeId root_;
};

void mis_separation() {
  std::printf("=== 1. rooted MIS: SIMASYNC vs SIMSYNC ===\n");
  const Graph g = cycle_graph(6);
  const NodeId root = 1;

  const NaiveSimAsyncMis naive(root);
  const ExecutionResult rn = run_protocol(g, naive);
  const MisOutput broken = naive.output(rn.board, 6);
  std::printf("SIMASYNC naive attempt on C6 claims {");
  for (NodeId v : broken) std::printf(" %u", v);
  std::printf(" } — independent? %s (Thm 6: no SIMASYNC[o(n)] protocol can)\n",
              is_independent_set(g, broken) ? "yes" : "NO");

  const RootedMisProtocol greedy(root);
  const bool all_ok = all_executions_ok(g, greedy, [&](const ExecutionResult& r) {
    return is_rooted_mis(g, greedy.output(r.board, 6), root);
  });
  std::printf("SIMSYNC greedy on C6: every one of the 720 schedules valid: %s\n",
              all_ok ? "yes" : "NO");
}

void eob_separation() {
  std::printf("\n=== 2. EOB-BFS: SIMSYNC vs ASYNC ===\n");
  const Graph g = connected_even_odd_bipartite(10, 1, 3, 5);
  const EobBfsProtocol p;
  const BfsForest ref = bfs_forest(g);
  bool ok = true;
  std::uint64_t schedules = 0;
  for_each_execution(g, p, [&](const ExecutionResult& r) {
    ++schedules;
    ok = ok && r.ok() && p.output(r.board, 10).layer == ref.layer;
    return ok;
  });
  std::printf("ASYNC protocol, free activation: %llu schedules, layers "
              "correct: %s\n",
              static_cast<unsigned long long>(schedules), ok ? "yes" : "NO");
  std::printf(
      "Simultaneity breaks it structurally: with every node active (and its\n"
      "message frozen) in round 1, layer values cannot depend on earlier\n"
      "writes — Thm 8 turns that into 2^{Omega(n^2)} indistinguishable\n"
      "inputs vs O(n log n) whiteboard bits.\n");
}

void cor4_boundary() {
  std::printf("\n=== 3. ASYNC vs SYNC on a non-bipartite input ===\n");
  GraphBuilder b(5);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();
  const EobBfsProtocol bip(EobMode::kBipartiteNoCheck);
  const SyncBfsProtocol sync_p;
  const ExecutionResult ra = run_protocol(g, bip);
  const ExecutionResult rs = run_protocol(g, sync_p);
  std::printf("triangle+tail: ASYNC bipartite protocol -> %s (%zu/5 wrote)\n",
              std::string(status_name(ra.status)).c_str(),
              ra.board.message_count());
  std::printf("               SYNC protocol           -> %s (layers %s)\n",
              std::string(status_name(rs.status)).c_str(),
              rs.ok() && sync_p.output(rs.board, 5).layer == bfs_forest(g).layer
                  ? "correct"
                  : "wrong");
}

}  // namespace
}  // namespace wb

int main() {
  wb::mis_separation();
  wb::eob_separation();
  wb::cor4_boundary();
  return 0;
}
