// Shared helpers for the benchmark harnesses: wall-clock timing and common
// formatting. Every bench prints the paper's expected row/series first, then
// the measured values, so EXPERIMENTS.md can record the comparison verbatim.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace wb::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  /// Elapsed milliseconds since construction.
  [[nodiscard]] double ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void subsection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

}  // namespace wb::bench
