// Figure 1 / Theorem 3: the triangle-detection gadget G'_{s,t} and the
// executable reduction TRIANGLE → BUILD for bipartite graphs.
//
// Regenerated artifacts:
//  1. the gadget equivalence "G'_{s,t} has a triangle ⟺ {v_s,v_t} ∈ E(G)",
//     checked exhaustively (all even-odd-bipartite graphs on 6 nodes, all
//     pairs) and on random bipartite instances;
//  2. the reduction pipeline run end-to-end with the Θ(n)-bit oracle,
//     reporting the A'-message blowup 2·f(n+1) + O(log n) that Lemma 3 says
//     cannot be brought below Ω(n).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/protocols/triangle.h"
#include "src/reductions/counting.h"
#include "src/reductions/triangle_reduction.h"
#include "src/support/bits.h"
#include "src/support/table.h"

namespace wb {
namespace {

void verify_gadget() {
  bench::subsection("gadget equivalence (Fig 1)");
  std::uint64_t checks = 0, mismatches = 0;
  for_each_even_odd_bipartite_graph(6, [&](const Graph& g) {
    for (NodeId s = 1; s <= 6; ++s) {
      for (NodeId t = s + 1; t <= 6; ++t) {
        ++checks;
        if (has_triangle(fig1_gadget(g, s, t)) != g.has_edge(s, t)) {
          ++mismatches;
        }
      }
    }
  });
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = random_bipartite(8, 8, 1, 2, seed);
    for (NodeId s = 1; s <= 16; ++s) {
      for (NodeId t = s + 1; t <= 16; ++t) {
        ++checks;
        if (has_triangle(fig1_gadget(g, s, t)) != g.has_edge(s, t)) {
          ++mismatches;
        }
      }
    }
  }
  std::printf("paper: triangle in G'_{s,t} iff {v_s,v_t} in E.\n");
  std::printf("measured: %llu gadget checks, %llu mismatches\n",
              static_cast<unsigned long long>(checks),
              static_cast<unsigned long long>(mismatches));
}

void run_reduction() {
  bench::subsection("executable Thm 3 reduction (oracle-driven)");
  const TriangleOracleProtocol oracle;
  const TriangleToBuildReduction reduction(oracle);
  TextTable t({"n", "pairs", "oracle f(n+1) bits", "A' msg bits",
               "2f(n+1)+log n", "exact?", "ms"});
  for (std::size_t half : {4u, 6u, 8u, 10u, 12u}) {
    const std::size_t n = 2 * half;
    const Graph g = random_bipartite(half, half, 1, 2, n);
    bench::WallTimer timer;
    const auto result = reduction.run(g);
    const double ms = timer.ms();
    const std::size_t predicted =
        2 * result.oracle_message_bits +
        static_cast<std::size_t>(bits_for_id(n));
    t.add_row({std::to_string(n), std::to_string(result.pairs_tested),
               std::to_string(result.oracle_message_bits),
               std::to_string(result.aprime_max_message_bits),
               std::to_string(predicted),
               result.reconstructed == g ? "yes" : "NO", fmt_double(ms, 2)});
  }
  std::printf("%s", t.render().c_str());
}

void counting_pressure() {
  bench::subsection("why o(n) bits cannot work (Lemma 3 on the Thm 3 family)");
  TextTable t({"n", "family bits (n/2)^2", "budget n*log2n", "budget n*sqrt(n)",
               "feasible at log n?"});
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const double family = log2_count_bipartite_fixed_parts(n);
    const double logbud = static_cast<double>(n) * (ceil_log2(n) + 1);
    const double sqb = static_cast<double>(n) * std::sqrt(static_cast<double>(n));
    t.add_row({std::to_string(n), fmt_double(family, 0), fmt_double(logbud, 0),
               fmt_double(sqb, 0), family <= logbud ? "yes" : "no"});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Crossover: the (n/2)^2-bit family outgrows the n*log n whiteboard\n"
      "budget from n = 64 on — any SIMASYNC triangle protocol would need\n"
      "Omega(n)-bit messages, matching Theorem 3.\n");
}

}  // namespace
}  // namespace wb

int main() {
  wb::bench::section("Figure 1 / Theorem 3 — TRIANGLE not in SIMASYNC[o(n)]");
  wb::verify_gadget();
  wb::run_reduction();
  wb::counting_pressure();
  return 0;
}
