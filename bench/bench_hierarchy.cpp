// Theorem 4 / Lemma 4 — the computing-power lattice, executable:
//
//   PSIMASYNC[f] ⊆ PSIMSYNC[f] ⊆ PASYNC[f] ⊆ PSYNC[f]
//
// Each inclusion is a concrete adapter (src/wb/adapters.h). This bench runs
// one fixed computation (BUILD, k = 2) through every adapter chain in all
// four engines and reports identical outputs, rounds and bits — plus the
// adapter overhead (the AsyncInSync rewind makes O(|W|) activation probes
// per compose, visible in the wall time).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/mis.h"
#include "src/support/table.h"
#include "src/wb/adapters.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

void build_chain() {
  bench::subsection("BUILD (SIMASYNC native) lifted through the lattice");
  TextTable t({"engine semantics", "protocol", "rounds", "wb bits", "ms",
               "output identical"});
  for (std::size_t n : {128u, 512u}) {
    const Graph g = random_k_degenerate(n, 2, 25, 13);
    const BuildDegenerateProtocol native(2);
    const SimAsyncInSimSync<BuildOutput> simsync(native);
    const Rebadge<BuildOutput> async_(native, ModelClass::kAsync);
    const AsyncInSync<BuildOutput> sync_(async_);
    const ProtocolWithOutput<BuildOutput>* chain[] = {&native, &simsync,
                                                      &async_, &sync_};
    for (const auto* p : chain) {
      RandomAdversary adv(5);
      bench::WallTimer timer;
      const ExecutionResult r = run_protocol(g, *p, adv);
      const double ms = timer.ms();
      WB_CHECK(r.ok());
      const BuildOutput out = p->output(r.board, n);
      t.add_row({std::string(model_name(p->model_class())) + " n=" +
                     std::to_string(n),
                 p->name(), std::to_string(r.stats.rounds),
                 std::to_string(r.stats.total_bits), fmt_double(ms, 2),
                 (out.has_value() && *out == g) ? "yes" : "NO"});
    }
  }
  std::printf("%s", t.render().c_str());
}

void mis_chain() {
  bench::subsection("rooted MIS (SIMSYNC native) lifted to ASYNC and SYNC");
  TextTable t({"engine semantics", "protocol", "rounds", "forced order", "ms",
               "valid MIS"});
  const std::size_t n = 256;
  const Graph g = connected_gnp(n, 1, 6, 77);
  const RootedMisProtocol native(9);
  const SimSyncInAsync<MisOutput> async_(native);
  const AsyncInSync<MisOutput> sync_(async_);
  for (const ProtocolWithOutput<MisOutput>* p :
       {static_cast<const ProtocolWithOutput<MisOutput>*>(&native),
        static_cast<const ProtocolWithOutput<MisOutput>*>(&async_),
        static_cast<const ProtocolWithOutput<MisOutput>*>(&sync_)}) {
    RandomAdversary adv(11);
    bench::WallTimer timer;
    const ExecutionResult r = run_protocol(g, *p, adv);
    const double ms = timer.ms();
    WB_CHECK(r.ok());
    bool forced = true;
    for (std::size_t i = 0; i < r.write_order.size(); ++i) {
      if (r.write_order[i] != static_cast<NodeId>(i + 1)) {
        forced = false;
        break;
      }
    }
    t.add_row({std::string(model_name(p->model_class())), p->name(),
               std::to_string(r.stats.rounds),
               forced ? "v1..vn" : "adversarial", fmt_double(ms, 2),
               is_rooted_mis(g, p->output(r.board, n), 9) ? "yes" : "NO"});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "The Lemma 4 SIMSYNC->ASYNC construction serializes activation: once\n"
      "lifted, the adversary has exactly one candidate per round, so the\n"
      "write order is forced to v1..vn regardless of strategy.\n");
}

}  // namespace
}  // namespace wb

int main() {
  wb::bench::section("Theorem 4 / Lemma 4 — the hierarchy, executable");
  std::printf(
      "paper: PSIMASYNC[f] c PSIMSYNC[f] c PASYNC[f] c= PSYNC[f] for\n"
      "Omega(log n) = f = o(n); the first two inclusions strict (Thm 5-8),\n"
      "the last open (Open Problem 3).\n");
  wb::build_chain();
  wb::mis_chain();
  return 0;
}
