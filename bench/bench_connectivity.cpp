// Open Problem 2 — "Is it possible to solve SPANNING-TREE or even
// CONNECTIVITY in the ASYNC[f(n)] model? For which f(n)?"
//
// The constructive half we can settle: both problems are in SYNC[log n] by
// reading a spanning forest off the Theorem 10 whiteboard
// (SpanningForestProtocol); this bench validates and scales it.
//
// The open half we can measure: the natural ASYNC attempt (the Cor 4
// bipartite BFS run on arbitrary graphs) fails by deadlock exactly when the
// input has an intra-layer edge with live descendants — we sweep G(n, p) and
// report the fraction of inputs where the obvious ASYNC approach dies, which
// is the empirical wall the open problem asks to get around.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/oracles.h"
#include "src/support/table.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

void sync_side() {
  bench::subsection("SYNC[log n] solves SPANNING-TREE and CONNECTIVITY");
  const SpanningForestProtocol p;
  TextTable t({"n", "family", "components", "connected", "valid forest",
               "bits/node", "ms"});
  for (std::size_t n : {50u, 150u, 400u}) {
    struct Row {
      const char* name;
      Graph g;
    };
    const Row rows[] = {
        {"connected G(n,4/n)", connected_gnp(n, 4, n, n)},
        {"sparse G(n,1/n)", erdos_renyi(n, 1, n, n)},
        {"forest", random_forest(n, 70, n)},
    };
    for (const Row& row : rows) {
      RandomAdversary adv(9);
      bench::WallTimer timer;
      const ExecutionResult r = run_protocol(row.g, p, adv);
      const double ms = timer.ms();
      WB_CHECK(r.ok());
      const SpanningForestOutput out = p.output(r.board, n);
      t.add_row({std::to_string(n), row.name, std::to_string(out.components),
                 out.connected ? "yes" : "no",
                 is_spanning_forest_of(row.g, out) ? "yes" : "NO",
                 std::to_string(r.stats.max_message_bits), fmt_double(ms, 1)});
    }
  }
  std::printf("%s", t.render().c_str());
}

void async_wall() {
  bench::subsection("the ASYNC wall, measured (bipartite protocol on G(n,p))");
  const EobBfsProtocol p(EobMode::kBipartiteNoCheck);
  TextTable t({"n", "p", "instances", "bipartite", "ok", "terminated wrong",
               "deadlock"});
  for (std::size_t n : {12u, 24u, 48u}) {
    for (auto [num, den] : {std::pair{1u, 8u}, std::pair{1u, 4u},
                            std::pair{1u, 2u}}) {
      std::size_t bip = 0, ok = 0, wrong = 0, deadlock = 0;
      const std::size_t trials = 60;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        const Graph g = erdos_renyi(n, num, den, seed * 977 + n);
        if (is_bipartite(g)) ++bip;
        const ExecutionResult r = run_protocol(g, p);
        if (!r.ok()) {
          ++deadlock;
          continue;
        }
        // On non-bipartite inputs a run may terminate with *wrong* layers:
        // intra-layer edges can inflate the certificate sums until they
        // balance accidentally. Termination alone is not success.
        const BfsProtocolOutput out = p.output(r.board, n);
        if (out.valid && out.layer == bfs_forest(g).layer) {
          ++ok;
        } else {
          ++wrong;
        }
      }
      t.add_row({std::to_string(n),
                 std::to_string(num) + "/" + std::to_string(den),
                 std::to_string(trials), std::to_string(bip),
                 std::to_string(ok), std::to_string(wrong),
                 std::to_string(deadlock)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Measured fact (recorded in EXPERIMENTS.md): the 'terminated wrong'\n"
      "column is zero everywhere — the ASYNC protocol is *partially correct*\n"
      "on arbitrary graphs. Freezing messages at activation means an entire\n"
      "layer freezes its d-1 counts before any same-layer write can pollute\n"
      "them, so layers that certify are true BFS layers; the only failure\n"
      "mode is deadlock, which strikes exactly when a layer with intra-layer\n"
      "edges still has descendants to certify (sparse regime: almost always;\n"
      "diameter-2 regime: never, hence the clean p=1/2 column). Open\n"
      "Problem 2 is thus a *liveness* question, not a safety one.\n");
}

void oracle_reference() {
  bench::subsection("CONNECTIVITY oracle reference (SIMASYNC[n], §1)");
  const PropertyOracleProtocol p = connectivity_oracle();
  std::size_t right = 0, total = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Graph g = erdos_renyi(30, 1, 10, seed);
    FirstAdversary adv;
    const ExecutionResult r = run_protocol(g, p, adv);
    ++total;
    if (r.ok() && p.output(r.board, 30) == is_connected(g)) ++right;
  }
  std::printf(
      "full-information baseline: %zu/%zu correct at %zu bits/node (Θ(n)) —\n"
      "what o(n) messages must beat.\n",
      right, total, p.message_bit_limit(30));
}

}  // namespace
}  // namespace wb

int main() {
  wb::bench::section(
      "CONNECTIVITY / SPANNING-TREE — Open Problem 2, both sides measured");
  wb::sync_side();
  wb::async_wall();
  wb::oracle_reference();
  return 0;
}
