// The million-node graph substrate, quantified:
//
//  - RMAT generation (Graph500 A=.57/B=.19/C=.19/D=.05) straight into packed
//    CSR via the two-pass pair stream — the `peak_over_csr` counter is the
//    whole point: peak build memory over the final CSR footprint must stay
//    well under the 1.5x acceptance line (the old edge-vector design paid
//    ~3x).
//  - Bulk CSR assembly from a flat unsorted edge buffer (from_unsorted_edges,
//    the generator/builder path): CSR MB/s.
//  - The streaming edge-list loader on a seekable source: input MB/s parsed,
//    again with peak_over_csr.
//  - The BFS reference oracle at scale (the verdict checker protocols are
//    measured against): edges/s and traversal rounds.
//  - Frontier-aware sync rounds vs the reference engine on a sparse-frontier
//    instance (sync-bfs on a star: after the hub writes, every later round
//    touches one leaf whose whole neighborhood is already written, so the
//    frontier engine recomposes nothing while the reference engine rescans
//    every active leaf). `rounds_per_s` is the headline ratio.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/protocols/bfs_sync.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

constexpr std::size_t kEdgeFactor = 16;

void BM_RmatGenerate(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  Graph::BuildStats stats;
  std::size_t csr_bytes = 0;
  std::size_t edges = 0;
  for (auto _ : state) {
    const Graph g = rmat_graph(scale, kEdgeFactor, 1, &stats);
    csr_bytes = g.memory_bytes();
    edges = g.edge_count();
    benchmark::DoNotOptimize(&g);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      csr_bytes * static_cast<std::size_t>(state.iterations())));
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["peak_over_csr"] =
      static_cast<double>(stats.peak_bytes) / static_cast<double>(csr_bytes);
}
BENCHMARK(BM_RmatGenerate)->DenseRange(16, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_CsrFromUnsortedEdges(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const Graph seed = rmat_graph(scale, kEdgeFactor, 1);
  const std::vector<Edge> edges = seed.edge_vector();
  const std::size_t csr_bytes = seed.memory_bytes();
  for (auto _ : state) {
    std::vector<Edge> buffer = edges;  // the build consumes its input
    const Graph g =
        Graph::from_unsorted_edges(seed.node_count(), std::move(buffer));
    benchmark::DoNotOptimize(&g);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      csr_bytes * static_cast<std::size_t>(state.iterations())));
}
BENCHMARK(BM_CsrFromUnsortedEdges)->DenseRange(16, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_EdgeListLoad(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const Graph g = rmat_graph(scale, kEdgeFactor, 1);
  std::string text;
  {
    std::ostringstream os;
    write_edge_list(g, os);
    text = std::move(os).str();
  }
  EdgeListLoadStats stats;
  for (auto _ : state) {
    std::istringstream in(text);
    const Graph h = read_edge_list(in, {}, &stats);
    benchmark::DoNotOptimize(&h);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      text.size() * static_cast<std::size_t>(state.iterations())));
  state.counters["two_pass"] = stats.two_pass ? 1.0 : 0.0;
  state.counters["peak_over_csr"] =
      static_cast<double>(stats.build.peak_bytes) /
      static_cast<double>(g.memory_bytes());
}
BENCHMARK(BM_EdgeListLoad)->DenseRange(16, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_BfsOracle(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const Graph g = rmat_graph(scale, kEdgeFactor, 1);
  int rounds = 0;
  for (auto _ : state) {
    const BfsForest f = bfs_forest(g);
    rounds = 0;
    for (const int l : f.layer) rounds = std::max(rounds, l + 1);
    benchmark::DoNotOptimize(&f);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      g.edge_count() * static_cast<std::size_t>(state.iterations())));
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_BfsOracle)->DenseRange(16, 20, 2)->Unit(benchmark::kMillisecond);

void sync_bfs_star_rounds(benchmark::State& state, bool frontier) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = star_graph(n);
  const SyncBfsProtocol p;
  EngineOptions opts;
  opts.frontier = frontier;
  std::size_t rounds = 0;
  for (auto _ : state) {
    const ExecutionResult r = run_protocol(g, p, opts);
    WB_CHECK(r.ok());
    rounds = r.stats.rounds;
  }
  state.counters["rounds_per_s"] = benchmark::Counter(
      static_cast<double>(rounds * static_cast<std::size_t>(state.iterations())),
      benchmark::Counter::kIsRate);
}

void BM_SyncBfsStarReference(benchmark::State& state) {
  sync_bfs_star_rounds(state, /*frontier=*/false);
}
BENCHMARK(BM_SyncBfsStarReference)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_SyncBfsStarFrontier(benchmark::State& state) {
  sync_bfs_star_rounds(state, /*frontier=*/true);
}
BENCHMARK(BM_SyncBfsStarFrontier)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wb

BENCHMARK_MAIN();
