// Theorem 9 — SUBGRAPH_f and the orthogonality of message size:
//  - the SIMASYNC[f] protocol run at f = log n, √n, n/4: measured bits per
//    node track f, reconstruction exact;
//  - the counting ledger: at f = n/4 even SYNC needs Θ(n)-bit messages, so
//    the problem sits in PSIMASYNC[f] \ PSYNC[o(f)] — the weakest model with
//    bigger messages beats the strongest model with smaller ones.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/generators.h"
#include "src/protocols/subgraph.h"
#include "src/reductions/counting.h"
#include "src/support/table.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

Graph prefix_subgraph(const Graph& g, std::size_t f) {
  GraphBuilder b(g.node_count());
  for (const Edge& e : g.edges()) {
    if (e.u <= f && e.v <= f) b.add_edge(e.u, e.v);
  }
  return b.build();
}

void protocol_sweep() {
  bench::subsection("SUBGRAPH_f protocol sweep");
  TextTable t({"n", "f", "f-shape", "max msg bits", "total bits", "exact",
               "ms"});
  for (std::size_t n : {64u, 256u, 1024u}) {
    const std::size_t logf = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(n))));
    const std::size_t sqrtf = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    const std::size_t linf = n / 4;
    const std::pair<std::size_t, const char*> shapes[] = {
        {logf, "log n"}, {sqrtf, "sqrt n"}, {linf, "n/4"}};
    for (const auto& [f, label] : shapes) {
      const SubgraphProtocol p(f);
      const Graph g = erdos_renyi(n, 1, 2, n + f);
      RandomAdversary adv(n);
      bench::WallTimer timer;
      const ExecutionResult r = run_protocol(g, p, adv);
      const double ms = timer.ms();
      WB_CHECK(r.ok());
      const bool exact = p.output(r.board, n) == prefix_subgraph(g, f);
      t.add_row({std::to_string(n), std::to_string(f), label,
                 std::to_string(r.stats.max_message_bits),
                 std::to_string(r.stats.total_bits), exact ? "yes" : "NO",
                 fmt_double(ms, 2)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Measured max message bits = f + id bits in every row: the protocol's\n"
      "cost is governed by f alone, independent of the model axis.\n");
}

void orthogonality_ledger() {
  bench::subsection("orthogonality ledger (Thm 9, f = n/4)");
  TextTable t({"n", "f = n/4", "family bits C(f,2)", "protocol budget n*f",
               "counting forces g >=", "n*log2 n"});
  for (const SubgraphRow& row : theorem9_table({64, 256, 1024, 4096})) {
    t.add_row({std::to_string(row.n), std::to_string(row.f),
               fmt_double(row.log2_family_size, 0),
               fmt_double(row.budget_f, 0),
               fmt_double(row.min_g_bits, 1) + " bits/node",
               fmt_double(row.budget_logn, 0)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "paper: SUBGRAPH_f in PSIMASYNC[f(n)] but not in PSYNC[g(n)] for any\n"
      "g = o(f) — increasing synchronization power cannot compensate for\n"
      "message size. The forced-g column grows linearly with n, while the\n"
      "log n column's per-node budget stays logarithmic.\n");
}

}  // namespace
}  // namespace wb

int main() {
  wb::bench::section("SUBGRAPH_f — Theorem 9, message size ⊥ synchronization");
  wb::protocol_sweep();
  wb::orthogonality_ledger();
  return 0;
}
