// Batch-engine scaling on the matrix-sweep workload: the same trial matrix
// the integration suite runs (protocol × graph family × adversary battery),
// executed through wb::run_batch at increasing thread counts. Prints
// wall-clock, speedup over the single-threaded run, and verifies that every
// thread count reproduces the single-threaded results bit for bit.
#include <cstdio>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/build_forest.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/mis.h"
#include "src/support/table.h"
#include "src/wb/batch.h"

namespace wb {
namespace {

struct Workload {
  // deque: trials hold pointers into this while it grows.
  std::deque<Graph> graphs;
  std::vector<std::unique_ptr<Protocol>> protocols;
  std::vector<Trial> trials;
};

/// The matrix-sweep shape at bench size: every protocol on its admissible
/// family, across sizes and seeds, under the full adversary battery.
Workload build_workload() {
  Workload w;
  auto add = [&w](Graph g, std::unique_ptr<Protocol> p, std::uint64_t seed) {
    w.graphs.push_back(std::move(g));
    w.protocols.push_back(std::move(p));
    const Graph& graph = w.graphs.back();
    const Protocol& protocol = *w.protocols.back();
    for (std::size_t i = 0; i < standard_adversary_count(); ++i) {
      Trial t;
      t.graph = &graph;
      t.protocol = &protocol;
      t.make_adversary = [&graph, seed, i](std::uint64_t) {
        return standard_adversary(graph, seed, i);
      };
      w.trials.push_back(std::move(t));
    }
  };

  for (const std::size_t n : {60u, 120u, 200u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      add(random_forest(n, 75, seed), std::make_unique<BuildForestProtocol>(),
          seed);
      add(random_k_degenerate(n, 2, 30, seed),
          std::make_unique<BuildDegenerateProtocol>(2), seed);
      add(erdos_renyi(n, 1, 4, seed),
          std::make_unique<RootedMisProtocol>(
              static_cast<NodeId>(1 + seed % n)),
          seed);
      add(connected_gnp(n, 1, 6, seed), std::make_unique<SyncBfsProtocol>(),
          seed);
      add(random_even_odd_bipartite(n, 1, 6, seed),
          std::make_unique<EobBfsProtocol>(), seed);
    }
  }
  return w;
}

bool identical(const std::vector<ExecutionResult>& a,
               const std::vector<ExecutionResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].status != b[i].status || a[i].write_order != b[i].write_order ||
        a[i].board.message_count() != b[i].board.message_count()) {
      return false;
    }
    for (std::size_t m = 0; m < a[i].board.message_count(); ++m) {
      if (!(a[i].board.message(m) == b[i].board.message(m))) return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace wb

int main() {
  using namespace wb;
  bench::section("batch engine — matrix-sweep workload scaling");
  const Workload w = build_workload();
  std::printf("trials: %zu (protocol x family x size x seed x adversary)\n",
              w.trials.size());

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> counts = {1, 2, 4, 8};
  if (hw > 8) counts.push_back(hw);

  std::vector<ExecutionResult> reference;
  double base_ms = 0;
  TextTable t({"threads", "ms", "speedup", "identical"});
  for (const std::size_t threads : counts) {
    bench::WallTimer timer;
    std::vector<ExecutionResult> results =
        run_batch(w.trials, BatchOptions{.threads = threads, .seed = 7});
    const double ms = timer.ms();
    if (threads == 1) {
      base_ms = ms;
      reference = std::move(results);
      t.add_row({"1", fmt_double(ms, 1), "1.00", "baseline"});
      continue;
    }
    t.add_row({std::to_string(threads), fmt_double(ms, 1),
               fmt_double(base_ms / ms, 2),
               identical(reference, results) ? "yes" : "NO"});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
