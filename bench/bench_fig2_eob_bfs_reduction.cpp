// Figure 2 / Theorem 8: the EOB-BFS reduction gadget G_i and the executable
// reduction EOB-BFS → BUILD for even-odd-bipartite graphs.
//
// Regenerated artifacts:
//  1. the caption's claim "v_j is at layer 3 of the BFS rooted in v_1 iff
//     {v_i, v_j} ∈ E(G)", checked exhaustively over all admissible inputs on
//     n = 5, 7 and at random for larger n;
//  2. the reduction pipeline driven end-to-end by the real ASYNC protocol of
//     Theorem 7, measuring the Θ(n) protocol runs / Θ(n² log n) total
//     whiteboard bits the reduction spends vs the single-run O(n log n)
//     budget — the gap Lemma 3 turns into the SIMSYNC impossibility.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/eob_bfs.h"
#include "src/reductions/counting.h"
#include "src/reductions/eob_bfs_reduction.h"
#include "src/wb/engine.h"
#include "src/support/rng.h"
#include "src/support/bits.h"
#include "src/support/table.h"

namespace wb {
namespace {

Graph make_input(std::size_t n, std::uint64_t p_num, std::uint64_t p_den,
                 std::uint64_t seed) {
  GraphBuilder b(n);
  Rng rng(seed);
  for (NodeId u = 2; u <= n; ++u) {
    for (NodeId v = u + 1; v <= n; ++v) {
      if ((u % 2) == (v % 2)) continue;
      if (rng.chance(p_num, p_den)) b.add_edge(u, v);
    }
  }
  return b.build();
}

void enumerate_inputs(std::size_t n, const std::function<void(const Graph&)>& fn) {
  // All even-odd-bipartite graphs on {2..n}, node 1 isolated, n odd.
  std::vector<Edge> pairs;
  for (NodeId u = 2; u <= n; ++u) {
    for (NodeId v = u + 1; v <= n; ++v) {
      if ((u % 2) != (v % 2)) pairs.push_back(Edge{u, v});
    }
  }
  WB_CHECK(pairs.size() <= 20);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << pairs.size());
       ++mask) {
    std::vector<Edge> edges;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if ((mask >> i) & 1u) edges.push_back(pairs[i]);
    }
    fn(Graph(n, edges));
  }
}

void verify_gadget() {
  bench::subsection("gadget property (Fig 2): layer 3 from v_1 = N(v_i)");
  std::uint64_t checks = 0, mismatches = 0;
  for (std::size_t n : {5u, 7u}) {
    enumerate_inputs(n, [&](const Graph& g) {
      for (NodeId i = 3; i <= n; i += 2) {
        const Graph gadget = fig2_gadget(g, i);
        const BfsResult bfs = bfs_from(gadget, 1);
        for (NodeId j = 2; j <= n; ++j) {
          if (j == i) continue;
          ++checks;
          if ((bfs.dist[j - 1] == 3) != g.has_edge(i, j)) ++mismatches;
        }
      }
    });
  }
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = make_input(21, 1, 2, seed);
    for (NodeId i = 3; i <= 21; i += 2) {
      const Graph gadget = fig2_gadget(g, i);
      const BfsResult bfs = bfs_from(gadget, 1);
      for (NodeId j = 2; j <= 21; ++j) {
        if (j == i) continue;
        ++checks;
        if ((bfs.dist[j - 1] == 3) != g.has_edge(i, j)) ++mismatches;
      }
    }
  }
  std::printf("measured: %llu layer-3 membership checks, %llu mismatches\n",
              static_cast<unsigned long long>(checks),
              static_cast<unsigned long long>(mismatches));
}

void run_reduction() {
  bench::subsection("executable Thm 8 reduction driven by the ASYNC protocol");
  const EobBfsProtocol bfs;
  const EobBfsToBuildReduction reduction(bfs);
  TextTable t({"n", "gadget nodes", "runs", "reduction wb bits",
               "single-run bits", "blowup", "exact?", "ms"});
  for (std::size_t n : {5u, 9u, 13u, 17u, 21u, 25u}) {
    const Graph g = make_input(n, 1, 2, n);
    bench::WallTimer timer;
    const auto result = reduction.run(g);
    const double ms = timer.ms();
    // Single run of the protocol on G itself for the bit comparison.
    const ExecutionResult single = run_protocol(g, bfs);
    const double blowup =
        single.stats.total_bits == 0
            ? 0.0
            : static_cast<double>(result.total_whiteboard_bits) /
                  static_cast<double>(single.stats.total_bits);
    t.add_row({std::to_string(n), std::to_string(2 * n - 1),
               std::to_string(result.gadget_runs),
               std::to_string(result.total_whiteboard_bits),
               std::to_string(single.stats.total_bits), fmt_double(blowup, 1),
               result.reconstructed == g ? "yes" : "NO", fmt_double(ms, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "Shape: runs = (n-1)/2 (one per odd i) and the reduction's whiteboard\n"
      "spend grows ~n/2 times the single-run budget — exactly the gap that\n"
      "contradicts Lemma 3 for a hypothetical SIMSYNC[o(n)] protocol.\n");
}

void counting_pressure() {
  bench::subsection("Lemma 3 on the Thm 8 family (even-odd-bipartite)");
  TextTable t({"n", "family bits ~n^2/4", "budget n*log2 n", "feasible?"});
  for (std::size_t n : {8u, 16u, 32u, 64u, 128u, 256u}) {
    const double family = log2_count_even_odd_bipartite(n);
    const double budget = static_cast<double>(n) * (ceil_log2(n) + 1);
    t.add_row({std::to_string(n), fmt_double(family, 0), fmt_double(budget, 0),
               family <= budget ? "yes" : "no"});
  }
  std::printf("%s", t.render().c_str());
}

}  // namespace
}  // namespace wb

int main() {
  wb::bench::section(
      "Figure 2 / Theorem 8 — EOB-BFS not in SIMSYNC[o(n)], reduction "
      "executable");
  wb::verify_gadget();
  wb::run_reduction();
  wb::counting_pressure();
  return 0;
}
