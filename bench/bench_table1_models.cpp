// Table 1 of the paper: the four protocol families
//
//                         | message frozen at activation | recomputed     |
//   all active in round 1 | SIMASYNC[f(n)]               | SIMSYNC[f(n)]  |
//   free activation       | ASYNC[f(n)]                  | SYNC[f(n)]     |
//
// This bench characterizes the four engine semantics on one task (BUILD of a
// 2-degenerate graph, pushed through the Lemma 4 adapters so the same
// computation runs in every model): measured activation pattern, freeze
// semantics, rounds, whiteboard bits, and wall time per model and n.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/graph/generators.h"
#include "src/protocols/build_degenerate.h"
#include "src/support/table.h"
#include "src/wb/adapters.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

struct CellResult {
  std::string model;
  bool frozen;
  bool simultaneous;
  std::size_t round1_activations = 0;
  std::size_t rounds = 0;
  std::size_t total_bits = 0;
  double ms = 0;
  bool correct = false;
};

CellResult run_cell(const Graph& g, const ProtocolWithOutput<BuildOutput>& p) {
  CellResult c;
  c.model = std::string(model_name(p.model_class()));
  c.frozen = is_asynchronous(p.model_class());
  c.simultaneous = is_simultaneous(p.model_class());
  RandomAdversary adv(17);
  bench::WallTimer t;
  const ExecutionResult r = run_protocol(g, p, adv);
  c.ms = t.ms();
  if (!r.ok()) return c;
  for (std::size_t ar : r.stats.activation_round) {
    if (ar == 1) ++c.round1_activations;
  }
  c.rounds = r.stats.rounds;
  c.total_bits = r.stats.total_bits;
  const BuildOutput out = p.output(r.board, g.node_count());
  c.correct = out.has_value() && *out == g;
  return c;
}

void run_for_n(std::size_t n) {
  const Graph g = random_k_degenerate(n, 2, 25, 42);
  const BuildDegenerateProtocol native(2);
  const SimAsyncInSimSync<BuildOutput> simsync(native);
  const Rebadge<BuildOutput> async_(native, ModelClass::kAsync);
  const AsyncInSync<BuildOutput> sync_(async_);

  TextTable table({"model", "frozen msg", "simultaneous", "round-1 act",
                   "rounds", "wb bits", "ms", "reconstructed"});
  for (const CellResult& c :
       {run_cell(g, native), run_cell(g, simsync), run_cell(g, async_),
        run_cell(g, sync_)}) {
    table.add_row({c.model, c.frozen ? "yes" : "no",
                   c.simultaneous ? "yes" : "no",
                   std::to_string(c.round1_activations) + "/" + std::to_string(n),
                   std::to_string(c.rounds), std::to_string(c.total_bits),
                   fmt_double(c.ms, 2), c.correct ? "yes" : "NO"});
  }
  std::printf("n = %zu (2-degenerate workload, random adversary)\n%s\n",
              n, table.render().c_str());
}

}  // namespace
}  // namespace wb

int main() {
  wb::bench::section("Table 1 — the four shared-whiteboard models");
  std::printf(
      "paper:                      | msg at activation | no restriction |\n"
      "  all active after round 1  | SIMASYNC[f(n)]    | SIMSYNC[f(n)]  |\n"
      "  no restriction            | ASYNC[f(n)]       | SYNC[f(n)]     |\n\n"
      "measured (same BUILD computation via the Lemma 4 adapters):\n\n");
  for (std::size_t n : {64u, 256u, 1024u}) wb::run_for_n(n);
  std::printf(
      "Reading: SIM* rows activate all n nodes in round 1; free rows may\n"
      "not (here the adapters keep everyone eager, so round-1 counts stay\n"
      "n/n — the asynchronous column is enforced mechanically by the engine\n"
      "freezing memories at activation). Rounds ~ n+1 in every model: one\n"
      "write per round, as defined in §2.\n");
  return 0;
}
