// Symbolic-exploration microbenchmarks: what the BDD backend buys over
// enumerating schedules, and what the memoized enumerator buys in between.
//
//  - BM_SymbolicCircuitTwoCliques/n — the circuit image fixpoint on
//    two_cliques(n): counts all (2n)! schedules exactly without visiting
//    one. At n=5 that is 3,628,800 schedules — the sweep the enumerator
//    takes minutes over at bench budgets — answered in BDD node count;
//    the `executions` counter doubles as a correctness pin (the run fails
//    if the count is not (2n)!).
//  - BM_SymbolicFrontierAnonDegree/n — the explicit-frontier engine on
//    star(n) with anonymous messages: converging schedules are merged by
//    engine state, so `frontier_states` grows like the number of distinct
//    boards, not n!.
//  - BM_EnumeratedAnonDegree/n vs BM_MemoizedAnonDegree/n — the same
//    instance through the serial enumerator with and without hash-consed
//    state memoization; `states_per_schedule` is the collapse headline.
//
// CI merges this harness's JSON into BENCH_pr10.json next to the committed
// BENCH_pr{2..10}.json trajectory (tools/bench_diff.py renders the table).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "src/graph/generators.h"
#include "src/protocols/anon_frontier.h"
#include "src/protocols/two_cliques.h"
#include "src/sym/reach.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

std::uint64_t factorial(std::uint64_t n) {
  std::uint64_t f = 1;
  for (std::uint64_t i = 2; i <= n; ++i) f *= i;
  return f;
}

const auto kAcceptAll = [](const ExecutionResult&) { return true; };

void BM_SymbolicCircuitTwoCliques(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = two_cliques(n);  // 2n nodes, (2n)! schedules
  const TwoCliquesProtocol p;
  sym::SymbolicOptions opts;
  opts.engine = sym::SymEngine::kCircuit;
  sym::SymbolicTotals totals;
  for (auto _ : state) {
    totals = sym::symbolic_sweep(g, p, kAcceptAll, opts);
    benchmark::DoNotOptimize(totals);
  }
  if (totals.executions != factorial(2 * n)) {
    state.SkipWithError("symbolic count disagrees with (2n)!");
    return;
  }
  state.counters["executions"] =
      benchmark::Counter(static_cast<double>(totals.executions));
  state.counters["bdd_nodes"] =
      benchmark::Counter(static_cast<double>(totals.bdd.nodes));
  state.counters["vars"] = benchmark::Counter(static_cast<double>(totals.vars));
}
BENCHMARK(BM_SymbolicCircuitTwoCliques)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_SymbolicFrontierAnonDegree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = star_graph(n);
  const AnonDegreeProtocol p;
  sym::SymbolicOptions opts;
  opts.engine = sym::SymEngine::kFrontier;
  sym::SymbolicTotals totals;
  for (auto _ : state) {
    totals = sym::symbolic_sweep(g, p, kAcceptAll, opts);
    benchmark::DoNotOptimize(totals);
  }
  if (totals.executions != factorial(n)) {
    state.SkipWithError("frontier count disagrees with n!");
    return;
  }
  state.counters["executions"] =
      benchmark::Counter(static_cast<double>(totals.executions));
  state.counters["frontier_states"] =
      benchmark::Counter(static_cast<double>(totals.states));
  state.counters["distinct"] =
      benchmark::Counter(static_cast<double>(totals.distinct));
}
BENCHMARK(BM_SymbolicFrontierAnonDegree)
    ->Arg(6)
    ->Arg(8)
    ->Arg(9)
    ->Unit(benchmark::kMillisecond);

void BM_EnumeratedAnonDegree(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = star_graph(n);
  const AnonDegreeProtocol p;
  ExhaustiveOptions opts;
  opts.threads = 1;
  std::uint64_t execs = 0;
  for (auto _ : state) {
    execs += for_each_execution(g, p, kAcceptAll, opts);
  }
  state.counters["executions_per_s"] = benchmark::Counter(
      static_cast<double>(execs), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(execs));
}
BENCHMARK(BM_EnumeratedAnonDegree)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MemoizedAnonDegree(benchmark::State& state) {
  // The same sweep through sweep_memoized: anonymous messages converge, so
  // the tree collapses — states_per_schedule is the fraction of the n!
  // schedule tree the memoized sweep actually walks.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = star_graph(n);
  const AnonDegreeProtocol p;
  ExhaustiveOptions opts;
  opts.threads = 1;
  opts.memoize = true;
  MemoizedTotals totals;
  std::uint64_t execs = 0;
  for (auto _ : state) {
    totals = sweep_memoized(g, p, kAcceptAll, opts);
    benchmark::DoNotOptimize(totals);
    execs += totals.executions;
  }
  if (totals.executions != factorial(n)) {
    state.SkipWithError("memoized count disagrees with n!");
    return;
  }
  state.counters["states_explored"] =
      benchmark::Counter(static_cast<double>(totals.states_explored));
  state.counters["memo_hits"] =
      benchmark::Counter(static_cast<double>(totals.memo_hits));
  state.counters["states_per_schedule"] =
      benchmark::Counter(static_cast<double>(totals.states_explored) /
                         static_cast<double>(totals.executions));
  state.SetItemsProcessed(static_cast<std::int64_t>(execs));
}
BENCHMARK(BM_MemoizedAnonDegree)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wb

BENCHMARK_MAIN();
