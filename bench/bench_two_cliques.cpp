// §5.1 — 2-CLIQUES in SIMSYNC[log n], and Open Problem 1:
//  - yes/no instances across n, exhaustive at small n, battery at medium n;
//  - the side-flood phenomenon: on connected (n-1)-regular inputs some
//    schedules produce no conflict message at all, and the output's
//    side-count check is what rejects them (analyzed in two_cliques.h);
//  - Open Problem 1 data: the counting ledger for the 2-CLIQUES family is
//    tiny (one bit of answer), so Lemma 3 gives no obstruction — consistent
//    with the problem's SIMASYNC status being open.
#include <atomic>
#include <cstdio>
#include <deque>
#include <vector>

#include "bench/bench_util.h"
#include "src/graph/algorithms.h"
#include "src/graph/generators.h"
#include "src/protocols/randomized.h"
#include "src/protocols/two_cliques.h"
#include "src/support/bits.h"
#include "src/support/table.h"
#include "src/wb/batch.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

void exhaustive_summary() {
  bench::subsection("exhaustive validation (parallel subtree sweep)");
  const TwoCliquesProtocol p;
  // threads=0: partition each schedule tree across every core. The visitor
  // runs concurrently, so the tallies are atomics; totals are bit-identical
  // to the serial sweep at any thread count.
  ExhaustiveOptions opts;
  opts.threads = 0;
  TextTable t({"instance", "2n", "executions", "wrong verdicts",
               "no-conflict executions"});
  auto probe = [&](const std::string& name, const Graph& g, bool truth) {
    std::atomic<std::uint64_t> wrong{0}, floods{0};
    const std::uint64_t execs = for_each_execution(
        g, p,
        [&](const ExecutionResult& r) {
          if (!r.ok()) {
            wrong.fetch_add(1, std::memory_order_relaxed);
            return true;
          }
          const TwoCliquesOutput out = p.output(r.board, g.node_count());
          if (out.yes != truth) wrong.fetch_add(1, std::memory_order_relaxed);
          // Count executions whose rejection came from side counts only.
          if (!out.yes) {
            bool conflict = false;
            for (const Bits& m : r.board.messages()) {
              BitReader reader(m);
              (void)reader.read_uint(bits_for_id(g.node_count()));
              if (reader.read_uint(2) == 2) conflict = true;
            }
            if (!conflict) floods.fetch_add(1, std::memory_order_relaxed);
          }
          return true;
        },
        opts);
    t.add_row({name, std::to_string(g.node_count()), std::to_string(execs),
               std::to_string(wrong.load()), std::to_string(floods.load())});
  };
  probe("K3+K3 (yes)", two_cliques(3), true);
  probe("C6 (no)", cycle_graph(6), false);
  probe("switched K3+K3 (no)", two_cliques_switched(3), false);
  probe("K4+K4 (yes)", two_cliques(4), true);
  std::printf("%s", t.render().c_str());
  std::printf(
      "The no-conflict column counts rejections that needed the side-count\n"
      "check: a one-sided flood on a connected regular graph writes no\n"
      "conflict message, yet must still be answered NO.\n");
}

void random_regular_no_instances() {
  bench::subsection("random (n-1)-regular NO instances (pairing + switches)");
  const TwoCliquesProtocol p;
  // The whole instance × adversary sweep is one batch: trials fan out across
  // cores, results come back in deterministic trial order.
  std::deque<Graph> graphs;  // trials hold pointers into this while it grows
  std::vector<bool> truths;
  std::vector<std::size_t> trial_graph;
  std::vector<Trial> trials;
  for (std::size_t n : {4u, 6u, 8u, 12u}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      graphs.push_back(random_regular(2 * n, n - 1, seed * 13 + n));
      const Graph& g = graphs.back();
      truths.push_back(is_two_cliques(g));
      for (std::size_t i = 0; i < standard_adversary_count(); ++i) {
        Trial t;
        t.graph = &g;
        t.protocol = &p;
        t.make_adversary = [&g, seed, i](std::uint64_t) {
          return standard_adversary(g, seed, i);
        };
        trial_graph.push_back(graphs.size() - 1);
        trials.push_back(std::move(t));
      }
    }
  }
  const std::vector<ExecutionResult> results = run_batch(trials);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Graph& g = graphs[trial_graph[i]];
    if (results[i].ok() &&
        p.output(results[i].board, g.node_count()).yes ==
            truths[trial_graph[i]]) {
      ++correct;
    }
  }
  std::printf("random regular instances across the battery: %zu/%zu correct\n",
              correct, results.size());
}

void battery_scaling() {
  bench::subsection("battery scaling");
  const TwoCliquesProtocol p;
  TextTable t({"instance", "2n", "adversaries ok", "bits/node", "ms"});
  for (std::size_t n : {8u, 32u, 96u}) {
    for (bool yes_instance : {true, false}) {
      const Graph g = yes_instance ? two_cliques(n) : two_cliques_switched(n);
      std::size_t ok = 0, total = 0;
      std::size_t bits = 0;
      bench::WallTimer timer;
      for (const BatteryRun& run : run_standard_battery(g, p, n)) {
        ++total;
        bits = std::max(bits, run.result.stats.max_message_bits);
        if (run.result.ok() &&
            p.output(run.result.board, 2 * n).yes == yes_instance) {
          ++ok;
        }
      }
      t.add_row({yes_instance ? "two cliques" : "switched",
                 std::to_string(2 * n),
                 std::to_string(ok) + "/" + std::to_string(total),
                 std::to_string(bits), fmt_double(timer.ms(), 1)});
    }
  }
  std::printf("%s", t.render().c_str());
}

void open_problem() {
  bench::subsection("Open Problem 1 — 2-CLIQUES in SIMASYNC[f]?");
  std::printf(
      "paper: open for every f. Lemma 3 gives no obstruction (the answer is\n"
      "one bit, not a reconstruction), and connectivity of (n-1)-regular\n"
      "2n-node graphs is equivalent (\"two cliques iff disconnected\").\n"
      "Our data point: the SIMSYNC protocol's decisions depend on write\n"
      "order in an essential way — under SIMASYNC semantics (messages fixed\n"
      "before any write), every node of a yes-instance would compose the\n"
      "same side-0 message, making yes- and no-instances with equal local\n"
      "views indistinguishable on the board. A SIMASYNC protocol, if one\n"
      "exists, must use different invariants entirely.\n");
}

void randomized_simasync() {
  bench::subsection(
      "§7 / Open Problem 4 — randomized 2-CLIQUES in SIMASYNC[log n]");
  std::printf(
      "paper: \"2-CLIQUES admits a randomized protocol for these models\".\n"
      "Implemented with public coins: each node writes a 61-bit polynomial\n"
      "fingerprint of its closed neighborhood; YES iff exactly two classes\n"
      "of size n. Completeness is deterministic; soundness holds except on\n"
      "fingerprint collisions (prob ~ n/2^61 per pair).\n\n");
  TextTable t({"2n", "yes accepted", "no rejected", "seeds", "bits/node"});
  for (std::size_t n : {4u, 16u, 64u, 256u}) {
    const Graph yes = two_cliques(n);
    const Graph no = two_cliques_switched(n);
    std::size_t yes_ok = 0, no_ok = 0;
    const std::size_t seeds = 32;
    std::size_t bits = 0;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      const RandomizedTwoCliquesProtocol p(seed);
      FirstAdversary adv;
      ExecutionResult r = run_protocol(yes, p, adv);
      bits = r.stats.max_message_bits;
      if (r.ok() && p.output(r.board, 2 * n).yes) ++yes_ok;
      r = run_protocol(no, p, adv);
      if (r.ok() && !p.output(r.board, 2 * n).yes) ++no_ok;
    }
    t.add_row({std::to_string(2 * n),
               std::to_string(yes_ok) + "/" + std::to_string(seeds),
               std::to_string(no_ok) + "/" + std::to_string(seeds),
               std::to_string(seeds), std::to_string(bits)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "The deterministic SIMASYNC status of 2-CLIQUES stays open (Open\n"
      "Problem 1); with shared randomness the weakest model already decides\n"
      "it at ~61 + log n bits per node.\n");
}

}  // namespace
}  // namespace wb

int main() {
  wb::bench::section("2-CLIQUES — §5.1 (SIMSYNC yes; SIMASYNC open)");
  wb::exhaustive_summary();
  wb::random_regular_no_instances();
  wb::battery_scaling();
  wb::open_problem();
  wb::randomized_simasync();
  return 0;
}
