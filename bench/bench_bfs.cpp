// Theorem 10 — BFS on arbitrary graphs in SYNC[log n]:
//  - exhaustive validation summary (all 5-node graphs, all schedules);
//  - scaling and adversary ablation: rounds stay n+1, message bits stay
//    within 6·log n, layers match reference BFS for every strategy;
//  - the d0 ("change your mind") machinery at work: total d0 charges equal
//    the number of intra-layer edges, the quantity condition (b) corrects;
//  - head-to-head with the ASYNC bipartite protocol on inputs where the
//    latter deadlocks.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/eob_bfs.h"
#include "src/support/bits.h"
#include "src/support/table.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

void exhaustive_summary() {
  bench::subsection("Thm 10 exhaustive validation (ALL graphs, n <= 5)");
  const SyncBfsProtocol p;
  std::uint64_t graphs = 0, execs = 0, failures = 0;
  for (std::size_t n = 1; n <= 5; ++n) {
    for_each_labeled_graph(n, [&](const Graph& g) {
      ++graphs;
      const BfsForest ref = bfs_forest(g);
      for_each_execution(g, p, [&](const ExecutionResult& r) {
        ++execs;
        if (!r.ok()) {
          ++failures;
          return true;
        }
        const BfsProtocolOutput out = p.output(r.board, n);
        if (out.layer != ref.layer || out.roots != ref.roots ||
            !is_valid_bfs_forest(g, out.layer, out.parent)) {
          ++failures;
        }
        return true;
      });
    });
  }
  std::printf(
      "%llu graphs, %llu executions, %llu failures\n",
      static_cast<unsigned long long>(graphs),
      static_cast<unsigned long long>(execs),
      static_cast<unsigned long long>(failures));
}

void adversary_ablation() {
  bench::subsection("adversary ablation (connected G(n, 4/n), n = 300)");
  const std::size_t n = 300;
  const Graph g = connected_gnp(n, 4, n, 21);
  const SyncBfsProtocol p;
  const BfsForest ref = bfs_forest(g);
  TextTable t({"adversary", "rounds", "max bits", "6*log2n", "ok", "ms"});
  for (auto& adv : standard_adversaries(g, 9)) {
    bench::WallTimer timer;
    const ExecutionResult r = run_protocol(g, p, *adv);
    const double ms = timer.ms();
    const bool ok = r.ok() && p.output(r.board, n).layer == ref.layer;
    t.add_row({adv->name(), std::to_string(r.stats.rounds),
               std::to_string(r.stats.max_message_bits),
               std::to_string(6 * (ceil_log2(n) + 1)), ok ? "yes" : "NO",
               fmt_double(ms, 1)});
  }
  std::printf("%s", t.render().c_str());
}

void d0_accounting() {
  bench::subsection("d0 accounting — intra-layer edges (condition (b))");
  TextTable t({"graph", "intra-layer edges (ref)", "sum of d0 charges",
               "equal"});
  auto probe = [&](const std::string& name, const Graph& g) {
    const std::size_t n = g.node_count();
    const BfsForest ref = bfs_forest(g);
    std::uint64_t intra = 0;
    for (const Edge& e : g.edges()) {
      if (ref.layer[e.u - 1] == ref.layer[e.v - 1]) ++intra;
    }
    const SyncBfsProtocol p;
    RandomAdversary adv(7);
    const ExecutionResult r = run_protocol(g, p, adv);
    WB_CHECK(r.ok());
    // Re-parse messages: the d0 field is the 5th; decode via the protocol's
    // own output is not enough, so count via board replay: every message's
    // d0 totals must equal the intra-layer edge count.
    std::uint64_t d0_total = 0;
    for (const Bits& m : r.board.messages()) {
      BitReader reader(m);
      const int idb = bits_for_id(n);
      const int cb = bits_for_range(n);
      (void)reader.read_uint(idb);        // id
      (void)reader.read_uint(cb);         // layer
      (void)reader.read_uint(cb);         // parent
      (void)reader.read_uint(cb);         // d-1
      d0_total += reader.read_uint(cb);   // d0
    }
    t.add_row({name, std::to_string(intra), std::to_string(d0_total),
               intra == d0_total ? "yes" : "NO"});
  };
  probe("K6", complete_graph(6));
  probe("C7", cycle_graph(7));
  probe("grid 5x5", grid_graph(5, 5));
  probe("G(60, 1/4)", connected_gnp(60, 1, 4, 3));
  probe("two cliques (K5+K5)", two_cliques(5));
  std::printf("%s", t.render().c_str());
  std::printf(
      "Every intra-layer edge is charged to d0 exactly once (by its later\n"
      "writer) — the 2*Σd0 correction in conditions (b)/(c) is exact.\n");
}

void vs_async() {
  bench::subsection("SYNC solves what ASYNC (bipartite mode) deadlocks on");
  GraphBuilder b(6);
  b.add_edge(1, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 6);
  const Graph g = b.build();
  const EobBfsProtocol async_p(EobMode::kBipartiteNoCheck);
  const SyncBfsProtocol sync_p;
  const ExecutionResult ra = run_protocol(g, async_p);
  const ExecutionResult rs = run_protocol(g, sync_p);
  std::printf("triangle+tail n=6: ASYNC bipartite protocol: %s after %zu/%zu "
              "writes; SYNC protocol: %s (layers correct: %s)\n",
              std::string(status_name(ra.status)).c_str(),
              ra.board.message_count(), g.node_count(),
              std::string(status_name(rs.status)).c_str(),
              (rs.ok() && sync_p.output(rs.board, 6).layer ==
                              bfs_forest(g).layer)
                  ? "yes"
                  : "no");
}

void BM_SyncBfsRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = connected_gnp(n, 4, n, 5);
  const SyncBfsProtocol p;
  for (auto _ : state) {
    RandomAdversary adv(3);
    benchmark::DoNotOptimize(run_protocol(g, p, adv));
  }
}
BENCHMARK(BM_SyncBfsRun)->RangeMultiplier(2)->Range(32, 512);

}  // namespace
}  // namespace wb

int main(int argc, char** argv) {
  wb::bench::section("BFS — Thm 10 (SYNC yes on arbitrary graphs)");
  wb::exhaustive_summary();
  wb::adversary_ablation();
  wb::d0_accounting();
  wb::vs_async();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
