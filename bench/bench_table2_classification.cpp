// Table 2 of the paper — the problem × model classification:
//
//                    SIMASYNC  SIMSYNC  ASYNC  SYNC
//  BUILD k-degenerate   yes      yes     yes    yes
//  rooted MIS            no      yes     yes    yes
//  TRIANGLE              no      yes     yes    yes
//  EOB-BFS               no       no     yes    yes
//  BFS                    ?        ?      ?     yes
//
// Every YES cell is regenerated mechanically: exhaustive adversarial
// schedules at small n plus the adversary battery at medium n. Every NO cell
// is regenerated through the paper's own machinery: the executable reduction
// (run with an unbounded-message oracle) plus the Lemma 3 counting gap that
// the reduction's target family forces.
#include <atomic>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/protocols/bfs_sync.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/eob_bfs.h"
#include "src/protocols/mis.h"
#include "src/protocols/triangle.h"
#include "src/reductions/counting.h"
#include "src/reductions/eob_bfs_reduction.h"
#include "src/reductions/mis_reduction.h"
#include "src/reductions/triangle_reduction.h"
#include "src/support/table.h"
#include "src/wb/adapters.h"
#include "src/wb/batch.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

struct Tally {
  std::uint64_t graphs = 0;
  std::uint64_t executions = 0;
  std::uint64_t failures = 0;
  [[nodiscard]] std::string summary() const {
    return std::to_string(graphs) + " graphs, " + std::to_string(executions) +
           " schedules, " + std::to_string(failures) + " failures";
  }
};

/// Exhaustively validate `p` over every graph produced by `gen`. Each
/// graph's schedule tree is partitioned across the shared worker pool
/// (ExhaustiveOptions::threads = 0), so the visitor tallies atomically; the
/// totals are bit-identical to a serial sweep.
template <typename P, typename Gen, typename Accept>
Tally exhaust(const Gen& gen, const P& p, const Accept& accept) {
  ExhaustiveOptions opts;
  opts.threads = 0;
  Tally t;
  gen([&](const Graph& g) {
    ++t.graphs;
    std::atomic<std::uint64_t> failures{0};
    t.executions += for_each_execution(
        g, p,
        [&](const ExecutionResult& r) {
          if (!r.ok() || !accept(g, p.output(r.board, g.node_count()))) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          return true;
        },
        opts);
    t.failures += failures.load();
  });
  return t;
}

void build_row() {
  bench::subsection("BUILD (k-degenerate, k=2): yes / yes / yes / yes");
  const BuildDegenerateProtocol native(2);
  const auto accept = [](const Graph& g, const BuildOutput& out) {
    return out.has_value() && *out == g;
  };
  const auto gen5 = [](auto fn) {
    for_each_labeled_graph(5, [&](const Graph& g) {
      if (is_k_degenerate(g, 2)) fn(g);
    });
  };
  std::printf("SIMASYNC exhaustive: %s\n", exhaust(gen5, native, accept).summary().c_str());

  const SimAsyncInSimSync<BuildOutput> simsync(native);
  const Rebadge<BuildOutput> async_(native, ModelClass::kAsync);
  const AsyncInSync<BuildOutput> sync_(async_);
  const Graph g = random_k_degenerate(200, 2, 25, 7);
  for (const ProtocolWithOutput<BuildOutput>* p :
       {static_cast<const ProtocolWithOutput<BuildOutput>*>(&simsync),
        static_cast<const ProtocolWithOutput<BuildOutput>*>(&async_),
        static_cast<const ProtocolWithOutput<BuildOutput>*>(&sync_)}) {
    std::size_t ok = 0, total = 0;
    for (const BatteryRun& run : run_standard_battery(g, *p, 3)) {
      ++total;
      if (run.result.ok() && accept(g, p->output(run.result.board, 200))) ++ok;
    }
    std::printf("%-28s battery n=200: %zu/%zu adversaries ok\n",
                p->name().c_str(), ok, total);
  }
}

void mis_row() {
  bench::subsection("rooted MIS: no / yes / yes / yes");
  // NO in SIMASYNC — Theorem 6 executable: MIS answers rebuild arbitrary
  // graphs, so Lemma 3's C(n,2)-bit requirement applies.
  const MisOracleProtocol oracle(9);
  const MisToBuildReduction reduction(oracle);
  const Graph g8 = erdos_renyi(8, 1, 2, 5);
  const auto red = reduction.run(g8);
  std::printf(
      "SIMASYNC: NO. Thm 6 reduction on n=8: reconstructed=%s via %zu pair\n"
      "  queries; oracle message = %zu bits (Θ(n)); Lemma 3: all graphs need\n"
      "  %.0f bits, budget at O(log n) msgs is %.0f bits (n=256: %.0f vs %.0f).\n",
      red.reconstructed == g8 ? "exact" : "FAILED", red.pairs_tested,
      red.oracle_message_bits, log2_count_all_graphs(8), 8 * 4.0,
      log2_count_all_graphs(256), 256 * 9.0);

  const auto accept_fn = [](NodeId root) {
    return [root](const Graph& g, const MisOutput& out) {
      return is_rooted_mis(g, out, root);
    };
  };
  Tally t;
  for (NodeId root = 1; root <= 4; ++root) {
    const RootedMisProtocol p(root);
    const auto gen = [&](auto fn) { for_each_labeled_graph(4, fn); };
    const Tally tr = exhaust(gen, p, accept_fn(root));
    t.graphs += tr.graphs;
    t.executions += tr.executions;
    t.failures += tr.failures;
  }
  std::printf("SIMSYNC exhaustive (all roots, n=4): %s\n", t.summary().c_str());

  const RootedMisProtocol native(5);
  const SimSyncInAsync<MisOutput> async_(native);
  const AsyncInSync<MisOutput> sync_(async_);
  const Graph g = connected_gnp(150, 1, 6, 11);
  for (const ProtocolWithOutput<MisOutput>* p :
       {static_cast<const ProtocolWithOutput<MisOutput>*>(&async_),
        static_cast<const ProtocolWithOutput<MisOutput>*>(&sync_)}) {
    std::size_t ok = 0, total = 0;
    for (const BatteryRun& run : run_standard_battery(g, *p, 4)) {
      ++total;
      if (run.result.ok() && is_rooted_mis(g, p->output(run.result.board, 150), 5)) {
        ++ok;
      }
    }
    std::printf("%-28s battery n=150: %zu/%zu adversaries ok\n",
                p->name().c_str(), ok, total);
  }
}

void triangle_row() {
  bench::subsection("TRIANGLE: no / yes / yes / yes");
  const TriangleOracleProtocol oracle;
  const TriangleToBuildReduction reduction(oracle);
  const Graph g10 = random_bipartite(5, 5, 1, 2, 3);
  const auto red = reduction.run(g10);
  std::printf(
      "SIMASYNC: NO. Thm 3 reduction on bipartite n=10: reconstructed=%s via\n"
      "  %zu apex gadgets (Fig 1); A' message = %zu bits >= 2 f(n+1); Lemma 3:\n"
      "  fixed-part bipartite graphs need (n/2)^2 bits: n=64 -> %.0f vs %.0f\n"
      "  available at O(log n).\n",
      red.reconstructed == g10 ? "exact" : "FAILED", red.pairs_tested,
      red.aprime_max_message_bits, log2_count_bipartite_fixed_parts(64),
      64 * 7.0);

  // SIMSYNC — the paper asserts YES; the text omits the protocol, so we
  // measure the pair-chase candidate (DESIGN.md §3): soundness plus
  // verdict quality under exhaustive schedules.
  const TrianglePairChaseProtocol chase(0);
  ExhaustiveOptions par;
  par.threads = 0;
  std::uint64_t runs = 0;
  std::atomic<std::uint64_t> correct{0}, missed{0}, unsound{0};
  for_each_labeled_graph(5, [&](const Graph& g) {
    const bool truth = has_triangle(g);
    runs += for_each_execution(
        g, chase,
        [&](const ExecutionResult& r) {
          const TriangleVerdict v = chase.output(r.board, 5);
          if ((v == TriangleVerdict::kYes) == truth) {
            correct.fetch_add(1, std::memory_order_relaxed);
          } else if (truth) {
            missed.fetch_add(1, std::memory_order_relaxed);
          } else {
            unsound.fetch_add(1, std::memory_order_relaxed);
          }
          return true;
        },
        par);
  });
  std::printf(
      "SIMSYNC (paper: yes; candidate pair-chase measured): %llu runs, "
      "%.2f%% correct, %llu misses, %llu unsound\n",
      static_cast<unsigned long long>(runs),
      100.0 * static_cast<double>(correct.load()) / static_cast<double>(runs),
      static_cast<unsigned long long>(missed.load()),
      static_cast<unsigned long long>(unsound.load()));

  const TrianglePairChaseProtocol csp(4);
  std::uint64_t cruns = 0;
  std::atomic<std::uint64_t> cunknown{0}, cwrong{0};
  for_each_labeled_graph(4, [&](const Graph& g) {
    const bool truth = has_triangle(g);
    cruns += for_each_execution(
        g, csp,
        [&](const ExecutionResult& r) {
          const TriangleVerdict v = csp.output(r.board, 4);
          if (v == TriangleVerdict::kUnknown) {
            cunknown.fetch_add(1, std::memory_order_relaxed);
          } else if ((v == TriangleVerdict::kYes) != truth) {
            cwrong.fetch_add(1, std::memory_order_relaxed);
          }
          return true;
        },
        par);
  });
  std::printf(
      "SIMSYNC pair-chase + consistent-graph output (n=4, exhaustive): %llu "
      "runs, %llu wrong, %llu abstain\n",
      static_cast<unsigned long long>(cruns),
      static_cast<unsigned long long>(cwrong.load()),
      static_cast<unsigned long long>(cunknown.load()));

  // Larger n: random graphs × random schedules (exhaustion is out of reach).
  std::uint64_t sruns = 0, scorrect = 0;
  for (std::size_t nn : {6u, 8u, 10u}) {
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
      const Graph g = erdos_renyi(nn, 1, 3, seed * 131 + nn);
      const bool truth = has_triangle(g);
      RandomAdversary adv(seed);
      const ExecutionResult r = run_protocol(g, chase, adv);
      if (!r.ok()) continue;
      ++sruns;
      if ((chase.output(r.board, nn) == TriangleVerdict::kYes) == truth) {
        ++scorrect;
      }
    }
  }
  std::printf(
      "SIMSYNC pair-chase sampled (n=6..10, random G(n,1/3) x random "
      "schedules): %llu runs, %.2f%% correct\n",
      static_cast<unsigned long long>(sruns), 100.0 * scorrect / sruns);
}

void eob_row() {
  bench::subsection("EOB-BFS: no / no / yes / yes");
  const EobBfsProtocol bfs;
  const EobBfsToBuildReduction reduction(bfs);
  GraphBuilder gb(9);
  gb.add_edge(2, 3);
  gb.add_edge(3, 4);
  gb.add_edge(4, 7);
  gb.add_edge(6, 9);
  const Graph g9 = gb.build();
  const auto red = reduction.run(g9);
  std::printf(
      "SIMASYNC+SIMSYNC: NO. Thm 8 reduction (Fig 2 gadgets) on n=9:\n"
      "  reconstructed=%s via %zu gadget runs; Lemma 3: even-odd-bipartite\n"
      "  family needs ~n^2/4 bits: n=64 -> %.0f vs %.0f at O(log n).\n",
      red.reconstructed == g9 ? "exact" : "FAILED", red.gadget_runs,
      log2_count_even_odd_bipartite(64), 64 * 7.0);

  const auto accept = [](const Graph& g, const BfsProtocolOutput& out) {
    const BfsForest ref = bfs_forest(g);
    return out.valid && out.layer == ref.layer && out.roots == ref.roots;
  };
  const auto gen = [](auto fn) { for_each_even_odd_bipartite_graph(6, fn); };
  std::printf("ASYNC exhaustive n=6: %s\n",
              exhaust(gen, bfs, accept).summary().c_str());

  const AsyncInSync<BfsProtocolOutput> sync_(bfs);
  const Graph g = connected_even_odd_bipartite(120, 1, 8, 5);
  std::size_t ok = 0, total = 0;
  for (const BatteryRun& run : run_standard_battery(g, sync_, 6)) {
    ++total;
    if (run.result.ok() && accept(g, sync_.output(run.result.board, 120))) ++ok;
  }
  std::printf("SYNC (adapter) battery n=120: %zu/%zu adversaries ok\n", ok,
              total);
}

void bfs_row() {
  bench::subsection("BFS: ? / ? / ? / yes");
  std::printf(
      "SIMASYNC/SIMSYNC/ASYNC: open in the paper (Open Problem 3 conjectures\n"
      "  BFS not in ASYNC[o(n)]).\n");
  const SyncBfsProtocol p;
  const auto accept = [](const Graph& g, const BfsProtocolOutput& out) {
    const BfsForest ref = bfs_forest(g);
    return out.valid && out.layer == ref.layer && out.roots == ref.roots &&
           is_valid_bfs_forest(g, out.layer, out.parent);
  };
  const auto gen = [](auto fn) { for_each_labeled_graph(5, fn); };
  std::printf("SYNC exhaustive (ALL graphs n=5): %s\n",
              exhaust(gen, p, accept).summary().c_str());
  const Graph g = connected_gnp(150, 1, 8, 21);
  std::size_t ok = 0, total = 0;
  for (const BatteryRun& run : run_standard_battery(g, p, 8)) {
    ++total;
    if (run.result.ok() && accept(g, p.output(run.result.board, 150))) ++ok;
  }
  std::printf("SYNC battery n=150: %zu/%zu adversaries ok\n", ok, total);
}

}  // namespace
}  // namespace wb

int main() {
  wb::bench::section("Table 2 — classification of communication models");
  std::printf(
      "paper:                SIMASYNC  SIMSYNC  ASYNC  SYNC\n"
      "  BUILD k-degenerate     yes      yes     yes    yes\n"
      "  rooted MIS              no      yes     yes    yes\n"
      "  TRIANGLE                no      yes     yes    yes\n"
      "  EOB-BFS                 no       no     yes    yes\n"
      "  BFS                      ?        ?      ?     yes\n");
  wb::build_row();
  wb::mis_row();
  wb::triangle_row();
  wb::eob_row();
  wb::bfs_row();

  wb::bench::section("reproduced matrix");
  wb::TextTable t({"problem", "SIMASYNC", "SIMSYNC", "ASYNC", "SYNC"});
  t.add_row({"BUILD k-degenerate", "yes*", "yes*", "yes*", "yes*"});
  t.add_row({"rooted MIS", "no (Thm6+L3)", "yes*", "yes*", "yes*"});
  t.add_row({"TRIANGLE", "no (Thm3+L3)", "yes (cand.)", "yes", "yes"});
  t.add_row({"EOB-BFS", "no (Thm8+L3)", "no (Thm8+L3)", "yes*", "yes*"});
  t.add_row({"BFS", "?", "?", "?", "yes*"});
  std::printf("%s\n* = validated exhaustively at small n and under the\n"
              "adversary battery at medium n, see sections above.\n",
              t.render().c_str());
  return 0;
}
