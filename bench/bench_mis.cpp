// Theorems 5 and 6 — rooted MIS separates SIMASYNC from SIMSYNC:
//  - Theorem 5 (the YES side): the greedy SIMSYNC[log n] protocol, validated
//    exhaustively at small n and scaled with google-benchmark;
//  - Theorem 6 (the NO side): the executable reduction MIS → BUILD showing
//    that SIMASYNC MIS answers reconstruct arbitrary graphs, against the
//    Lemma 3 ledger for the all-graphs family.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/protocols/mis.h"
#include "src/reductions/counting.h"
#include "src/reductions/mis_reduction.h"
#include "src/support/table.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

void exhaustive_summary() {
  bench::subsection("Thm 5 exhaustive validation");
  std::uint64_t graphs = 0, execs = 0, failures = 0;
  for (std::size_t n = 1; n <= 4; ++n) {
    for_each_labeled_graph(n, [&](const Graph& g) {
      for (NodeId root = 1; root <= n; ++root) {
        ++graphs;
        const RootedMisProtocol p(root);
        for_each_execution(g, p, [&](const ExecutionResult& r) {
          ++execs;
          if (!r.ok() || !is_rooted_mis(g, p.output(r.board, n), root)) {
            ++failures;
          }
          return true;
        });
      }
    });
  }
  std::printf(
      "all labeled graphs n<=4, all roots, all schedules: %llu (graph,root) "
      "pairs, %llu executions, %llu failures\n",
      static_cast<unsigned long long>(graphs),
      static_cast<unsigned long long>(execs),
      static_cast<unsigned long long>(failures));
}

void scaling_table() {
  bench::subsection("Thm 5 scaling (greedy SIMSYNC protocol)");
  TextTable t({"n", "adversary", "rounds", "bits/node", "|MIS|", "valid",
               "ms"});
  for (std::size_t n : {100u, 300u, 600u}) {
    const Graph g = connected_gnp(n, 1, 8, n);
    const NodeId root = static_cast<NodeId>(n / 2);
    const RootedMisProtocol p(root);
    for (auto& adv : standard_adversaries(g, n)) {
      bench::WallTimer timer;
      const ExecutionResult r = run_protocol(g, p, *adv);
      const double ms = timer.ms();
      WB_CHECK(r.ok());
      const MisOutput out = p.output(r.board, n);
      t.add_row({std::to_string(n), adv->name(),
                 std::to_string(r.stats.rounds),
                 std::to_string(r.stats.max_message_bits),
                 std::to_string(out.size()),
                 is_rooted_mis(g, out, root) ? "yes" : "NO",
                 fmt_double(ms, 1)});
    }
  }
  std::printf("%s", t.render().c_str());
}

void reduction_side() {
  bench::subsection("Thm 6 — the NO side, executable");
  TextTable t({"n", "pairs", "oracle bits Θ(n)", "A' msg bits", "exact?",
               "ms"});
  for (std::size_t n : {6u, 8u, 10u, 12u}) {
    const Graph g = erdos_renyi(n, 1, 2, n * 7);
    const MisOracleProtocol oracle(static_cast<NodeId>(n + 1));
    const MisToBuildReduction reduction(oracle);
    bench::WallTimer timer;
    const auto result = reduction.run(g);
    const double ms = timer.ms();
    t.add_row({std::to_string(n), std::to_string(result.pairs_tested),
               std::to_string(result.oracle_message_bits),
               std::to_string(result.aprime_max_message_bits),
               result.reconstructed == g ? "yes" : "NO", fmt_double(ms, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "paper: a SIMASYNC[o(n)] MIS protocol would compress the all-graphs\n"
      "family below Lemma 3's bound; ledger at n=128: family needs %.0f\n"
      "bits, n*log n budget is %.0f.\n",
      log2_count_all_graphs(128), 128 * 8.0);
}

void BM_MisRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = connected_gnp(n, 1, 8, 3);
  const RootedMisProtocol p(1);
  for (auto _ : state) {
    RandomAdversary adv(9);
    benchmark::DoNotOptimize(run_protocol(g, p, adv));
  }
}
BENCHMARK(BM_MisRun)->RangeMultiplier(2)->Range(32, 512);

}  // namespace
}  // namespace wb

int main(int argc, char** argv) {
  wb::bench::section("rooted MIS — Thm 5 (SIMSYNC yes) vs Thm 6 (SIMASYNC no)");
  wb::exhaustive_summary();
  wb::scaling_table();
  wb::reduction_side();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
