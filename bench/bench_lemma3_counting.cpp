// Lemma 3, made numeric across all the families the paper quantifies over:
// BUILD restricted to a family of g(n) graphs needs log2 g(n) = O(n·f(n))
// whiteboard bits in every model. This bench prints the full ledger —
// family size vs whiteboard budgets at f = log n, √n, n — and flags each
// (family, n, f) as feasible/infeasible, which is exactly the boundary the
// paper's positive (§3) and negative (§4, §5) results trace.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/reductions/counting.h"
#include "src/support/bits.h"
#include "src/support/table.h"

namespace wb {
namespace {

void main_table() {
  bench::subsection("family sizes vs whiteboard budgets");
  TextTable t({"family", "n", "log2 g(n)", "n*logn", "n*sqrt(n)", "n*n",
               "log n ok?", "sqrt ok?"});
  const std::vector<std::size_t> ns = {8, 16, 32, 64, 128, 256, 512, 1024};
  for (const CountingRow& row : lemma3_table(ns)) {
    t.add_row({row.family, std::to_string(row.n),
               fmt_double(row.log2_family_size, 0),
               fmt_double(row.budget_logn, 0), fmt_double(row.budget_sqrt, 0),
               fmt_double(row.budget_linear, 0),
               row.feasible_logn() ? "yes" : "no",
               row.feasible_sqrt() ? "yes" : "no"});
  }
  std::printf("%s", t.render().c_str());
}

void narrative() {
  std::printf(
      "\nReading the ledger against the paper:\n"
      " - labeled forests & k-degenerate graphs stay within n*O(log n):\n"
      "   Theorem 2's SIMASYNC[log n] BUILD protocol is information-\n"
      "   theoretically possible, and we implement it.\n"
      " - all graphs / fixed-part bipartite (Thm 3) / even-odd-bipartite\n"
      "   (Thm 8) grow like n^2 bits: BUILD-type targets are impossible at\n"
      "   o(n) message size, which is what the reductions convert into the\n"
      "   MIS, TRIANGLE and EOB-BFS impossibility rows of Table 2.\n");
}

void theorem9_ledger() {
  bench::subsection("Theorem 9 ledger (prefix family, f = n/4)");
  TextTable t({"n", "f(n)", "log2 g = C(f,2)", "budget n*f",
               "counting forces g >=", "budget n*logn"});
  for (const SubgraphRow& row : theorem9_table({64, 256, 1024, 4096, 16384})) {
    t.add_row({std::to_string(row.n), std::to_string(row.f),
               fmt_double(row.log2_family_size, 0), fmt_double(row.budget_f, 0),
               fmt_double(row.min_g_bits, 1) + " bits",
               fmt_double(row.budget_logn, 0)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "SUBGRAPH_f fits at message size f (SIMASYNC protocol implemented),\n"
      "yet even the strongest model SYNC needs Θ(n)-bit messages for it —\n"
      "message size is a resource orthogonal to synchronization power.\n");
}

}  // namespace
}  // namespace wb

int main() {
  wb::bench::section("Lemma 3 — the information-theoretic ledger");
  wb::main_table();
  wb::narrative();
  wb::theorem9_ledger();
  return 0;
}
