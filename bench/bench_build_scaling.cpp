// Lemma 1 / Theorem 2 / Algorithm 1 — the quantitative side of §3:
//  - message size O(k² log n) bits per node (Lemma 1), with the constants
//    printed against the measured encoder output;
//  - encoding O(n) local time, reconstruction O(n²) (Algorithm 1): timed
//    with google-benchmark across n and k;
//  - decoder ablation: Newton's-identities decoding vs the Lemma 2 lookup
//    table (O(n^k) preprocessing).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/generators.h"
#include "src/protocols/build_degenerate.h"
#include "src/protocols/build_forest.h"
#include "src/support/table.h"
#include "src/wb/engine.h"

namespace wb {
namespace {

Whiteboard board_for(const Graph& g, const Protocol& p) {
  FirstAdversary adv;
  ExecutionResult r = run_protocol(g, p, adv);
  WB_CHECK(r.ok());
  return std::move(r.board);
}

void BM_ForestEncode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = random_tree(n, 5);
  const BuildForestProtocol p;
  for (auto _ : state) {
    for (NodeId v = 1; v <= n; ++v) {
      benchmark::DoNotOptimize(
          p.compose(LocalView(v, g.neighbors(v), n), Whiteboard{}));
    }
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ForestEncode)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_ForestDecode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = random_tree(n, 5);
  const BuildForestProtocol p;
  const Whiteboard board = board_for(g, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.output(board, n));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ForestDecode)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_DegenerateEncode(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const Graph g = random_k_degenerate(n, k, 20, 9);
  const BuildDegenerateProtocol p(k);
  for (auto _ : state) {
    for (NodeId v = 1; v <= n; ++v) {
      benchmark::DoNotOptimize(
          p.compose(LocalView(v, g.neighbors(v), n), Whiteboard{}));
    }
  }
}
BENCHMARK(BM_DegenerateEncode)
    ->ArgsProduct({{1, 2, 3, 4}, {256, 1024, 4096}});

void BM_DegenerateDecodeNewton(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const Graph g = random_k_degenerate(n, k, 20, 9);
  const BuildDegenerateProtocol p(k);
  const Whiteboard board = board_for(g, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.output(board, n));
  }
}
BENCHMARK(BM_DegenerateDecodeNewton)
    ->ArgsProduct({{1, 2, 3, 4}, {256, 1024}});

void BM_DegenerateDecodeTable(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  const Graph g = random_k_degenerate(n, k, 20, 9);
  const BuildDegenerateProtocol p(k, DegenerateDecoder::kTable);
  const Whiteboard board = board_for(g, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.output(board, n));
  }
}
BENCHMARK(BM_DegenerateDecodeTable)->ArgsProduct({{1, 2}, {32, 64}});

void print_message_size_table() {
  bench::subsection("Lemma 1 — message bits vs k^2 log n");
  TextTable t({"k", "n", "measured max bits", "declared bound",
               "k(k+3)/2+2 fields * logn"});
  for (int k : {1, 2, 3, 4, 5}) {
    for (std::size_t n : {64u, 1024u, 16384u}) {
      const Graph g = random_k_degenerate(n, k, 10, 3);
      const BuildDegenerateProtocol p(k);
      FirstAdversary adv;
      const ExecutionResult r = run_protocol(g, p, adv);
      WB_CHECK(r.ok());
      const double logn = std::log2(static_cast<double>(n));
      t.add_row({std::to_string(k), std::to_string(n),
                 std::to_string(r.stats.max_message_bits),
                 std::to_string(p.message_bit_limit(n)),
                 fmt_double((k * (k + 3) / 2.0 + 2.0) * logn, 0)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "paper (Lemma 1): O(k^2 log n) bits per node — the measured bits track\n"
      "the k(k+3)/2 + 2 field widths exactly.\n");
}

void print_reconstruction_shape() {
  bench::subsection("Algorithm 1 — reconstruction time shape (expect ~n^2)");
  TextTable t({"n", "decode ms (k=3)", "ratio vs half-size"});
  double prev = 0;
  for (std::size_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
    const Graph g = random_k_degenerate(n, 3, 20, 4);
    const BuildDegenerateProtocol p(3);
    const Whiteboard board = board_for(g, p);
    bench::WallTimer timer;
    const BuildOutput out = p.output(board, n);
    const double ms = timer.ms();
    WB_CHECK(out.has_value());
    t.add_row({std::to_string(n), fmt_double(ms, 2),
               prev > 0 ? fmt_double(ms / prev, 2) : "-"});
    prev = ms;
  }
  std::printf("%s", t.render().c_str());
  std::printf("paper: O(n^2) total — doubling n should ~4x the time.\n");
}

}  // namespace
}  // namespace wb

int main(int argc, char** argv) {
  wb::bench::section("§3 BUILD — encoding/decoding scaling (Lemma 1, Alg 1)");
  wb::print_message_size_table();
  wb::print_reconstruction_shape();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
