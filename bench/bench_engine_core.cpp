// Simulation-core microbenchmarks: the allocation discipline of the hot path.
//
// Every exhaustive sweep, batch run, and reduction bottoms out in the same
// inner loop — compose, append, branch, rewind — so this harness pins its
// cost in both time and heap allocations. The binary interposes operator
// new/delete with a counter and reports allocations as benchmark counters:
//
//  - BM_RunProtocol            — one full engine run (two_cliques, SIMSYNC);
//  - BM_BoardBranchCopy        — snapshotting a final board (copy-on-write,
//                                O(1) regardless of message count);
//  - BM_EngineStateBranchCopy  — copying a mid-run EngineState (what the
//                                pre-backtracking explorer paid per branch);
//  - BM_ExhaustiveTwoCliques   — the full two_cliques(4) schedule sweep
//                                (8 nodes, 8! = 40320 executions);
//                                `allocs_per_exec` is the headline number:
//                                ~58 before the allocation-free core, ~2.7
//                                with the PR 2 core, ~0.01 now that a
//                                per-engine scratch BitWriter is threaded
//                                through Protocol::compose — the benchmark
//                                *fails* (SkipWithError) if the steady
//                                state exceeds 0.5 allocs/execution;
//  - BM_ExhaustiveBuildFull    — the same sweep with an allocating-subclass
//                                migrant (BuildFull), gating the scratch-
//                                BitWriter migration of the protocol layer
//                                at the same ≤0.5 allocs/execution bar;
//  - BM_ExhaustiveTwoCliquesThreads — the same sweep partitioned across the
//                                shared worker pool at 1/2/4/8 threads;
//                                verifies the bit-identical 40320 count at
//                                every thread count and reports the
//                                execution rate (speedup needs multi-core
//                                hardware — CI — not this 1-core container);
//  - BM_DistinctBoards         — hash-keyed distinct-final-board counting,
//                                streamed through the pluggable accumulator
//                                (exact sorted-run union, or a HyperLogLog
//                                sketch; serial and parallel);
//  - BM_DistinctInsert /       — the accumulator layer in isolation: insert
//    BM_DistinctMerge            and merge throughput of the exact and hll
//                                implementations on synthetic key streams,
//                                with a `peak_bytes` counter contrasting the
//                                two memory models (16 B per distinct key
//                                vs 2^p registers, flat);
//  - BM_FrameRoundTrip         — the fleet wire layer: encode + byte-chunked
//                                decode of spec-sized frames, pinning the
//                                framing overhead the controller pays per
//                                dispatched shard.
//
// CI runs this binary as the Release bench-smoke job and uploads the JSON
// as BENCH_pr6.json; the committed BENCH_pr{2..6}.json at the repo root are
// the recorded baselines of that trajectory (tools/bench_diff.py renders a
// pairwise diff for two files, the full trajectory table for three or more).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "src/fleet/transport.h"
#include "src/graph/generators.h"
#include "src/protocols/build_full.h"
#include "src/protocols/mis.h"
#include "src/protocols/two_cliques.h"
#include "src/wb/distinct.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace {

std::atomic<unsigned long long> g_allocs{0};

unsigned long long alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace

// The whole binary allocates through these interposers; GCC cannot see that
// and warns that std::free releases operator-new memory.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wb {
namespace {

void BM_RunProtocol(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = two_cliques(n);  // 2n nodes
  const TwoCliquesProtocol p;
  unsigned long long runs = 0;
  const unsigned long long before = alloc_count();
  for (auto _ : state) {
    ExecutionResult r = run_protocol(g, p);
    benchmark::DoNotOptimize(r);
    ++runs;
  }
  state.counters["allocs_per_run"] = benchmark::Counter(
      static_cast<double>(alloc_count() - before) / static_cast<double>(runs));
  state.SetItemsProcessed(static_cast<std::int64_t>(runs));
}
BENCHMARK(BM_RunProtocol)->Arg(4)->Arg(16)->Arg(64);

void BM_BoardBranchCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = two_cliques(n);
  const TwoCliquesProtocol p;
  const ExecutionResult r = run_protocol(g, p);
  unsigned long long copies = 0;
  const unsigned long long before = alloc_count();
  for (auto _ : state) {
    Whiteboard snapshot = r.board;  // O(1): shares the immutable prefix
    benchmark::DoNotOptimize(snapshot);
    ++copies;
  }
  state.counters["messages"] =
      benchmark::Counter(static_cast<double>(r.board.message_count()));
  state.counters["allocs_per_copy"] = benchmark::Counter(
      static_cast<double>(alloc_count() - before) / static_cast<double>(copies));
  state.SetItemsProcessed(static_cast<std::int64_t>(copies));
}
BENCHMARK(BM_BoardBranchCopy)->Arg(4)->Arg(64)->Arg(256);

void BM_EngineStateBranchCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = two_cliques(n);
  const TwoCliquesProtocol p;
  // Advance to the middle of a run, where the pre-backtracking explorer
  // branched: half the messages written, every memory composed.
  EngineState mid(g, p);
  for (std::size_t w = 0; w < n; ++w) {
    mid.begin_round();
    WB_CHECK(!mid.terminal());
    mid.write(0);
  }
  for (auto _ : state) {
    EngineState branch = mid;
    benchmark::DoNotOptimize(branch);
  }
}
BENCHMARK(BM_EngineStateBranchCopy)->Arg(4)->Arg(64);

void BM_ExhaustiveTwoCliques(benchmark::State& state) {
  const Graph g = two_cliques(4);  // 8 nodes: 8! = 40320 executions
  const TwoCliquesProtocol p;
  std::uint64_t execs = 0;
  const unsigned long long before = alloc_count();
  for (auto _ : state) {
    execs += for_each_execution(
        g, p, [](const ExecutionResult&) { return true; });
  }
  const double allocs_per_exec =
      static_cast<double>(alloc_count() - before) / static_cast<double>(execs);
  state.counters["executions"] =
      benchmark::Counter(static_cast<double>(execs));
  state.counters["allocs_per_exec"] = benchmark::Counter(allocs_per_exec);
  state.SetItemsProcessed(static_cast<std::int64_t>(execs));
  // The allocation story is DONE: engine journaling (PR 2) plus the scratch
  // BitWriter through compose (PR 3) leave only per-sweep setup, amortized
  // over 40320 executions. Regressing past 0.5 allocs/execution means a
  // hot-path allocation crept back in — fail the bench, not just drift.
  if (allocs_per_exec > 0.5) {
    state.SkipWithError("steady-state allocation regression: > 0.5 allocs/exec");
  }
}
BENCHMARK(BM_ExhaustiveTwoCliques)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveBuildFull(benchmark::State& state) {
  // Same sweep, SIMASYNC protocol: BuildFull freezes (ID, adjacency row)
  // messages at activation. Guards the scratch-BitWriter migration of the
  // *allocating protocol subclasses* — before it, every compose heap-
  // allocated its writer buffer; with the migration the steady state is
  // allocation-free like the two-cliques sweep above.
  const Graph g = two_cliques(4);  // 8 nodes: 8! = 40320 executions
  const BuildFullProtocol p;
  std::uint64_t execs = 0;
  const unsigned long long before = alloc_count();
  for (auto _ : state) {
    execs += for_each_execution(
        g, p, [](const ExecutionResult&) { return true; });
  }
  const double allocs_per_exec =
      static_cast<double>(alloc_count() - before) / static_cast<double>(execs);
  state.counters["executions"] =
      benchmark::Counter(static_cast<double>(execs));
  state.counters["allocs_per_exec"] = benchmark::Counter(allocs_per_exec);
  state.SetItemsProcessed(static_cast<std::int64_t>(execs));
  if (allocs_per_exec > 0.5) {
    state.SkipWithError("steady-state allocation regression: > 0.5 allocs/exec");
  }
}
BENCHMARK(BM_ExhaustiveBuildFull)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveTwoCliquesThreads(benchmark::State& state) {
  const Graph g = two_cliques(4);  // 8 nodes: 8! = 40320 executions
  const TwoCliquesProtocol p;
  ExhaustiveOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t execs = 0;
  for (auto _ : state) {
    const std::uint64_t visited = for_each_execution(
        g, p, [](const ExecutionResult&) { return true; }, opts);
    if (visited != 40320) {
      state.SkipWithError("parallel sweep lost executions");
      return;
    }
    execs += visited;
  }
  state.counters["executions_per_s"] = benchmark::Counter(
      static_cast<double>(execs), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(execs));
}
BENCHMARK(BM_ExhaustiveTwoCliquesThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DistinctBoardsTwoCliques(benchmark::State& state) {
  const Graph g = two_cliques(4);
  const TwoCliquesProtocol p;
  ExhaustiveOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t distinct = 0;
  for (auto _ : state) {
    distinct = count_distinct_final_boards(g, p, opts);
    benchmark::DoNotOptimize(distinct);
  }
  state.counters["distinct"] = benchmark::Counter(static_cast<double>(distinct));
}
BENCHMARK(BM_DistinctBoardsTwoCliques)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_DistinctBoardsMis(benchmark::State& state) {
  const Graph g = two_cliques(3);  // 6 nodes
  const RootedMisProtocol p(1);
  std::uint64_t distinct = 0;
  for (auto _ : state) {
    distinct = count_distinct_final_boards(g, p);
    benchmark::DoNotOptimize(distinct);
  }
  state.counters["distinct"] = benchmark::Counter(static_cast<double>(distinct));
}
BENCHMARK(BM_DistinctBoardsMis)->Unit(benchmark::kMillisecond);

void BM_DistinctBoardsTwoCliquesHll(benchmark::State& state) {
  // The full sweep of BM_DistinctBoardsTwoCliques, counted through the
  // hll:14 accumulator instead of exact dedup — the sweep cost dominates,
  // so this pins that switching accumulators is close to free.
  const Graph g = two_cliques(4);
  const TwoCliquesProtocol p;
  ExhaustiveOptions opts;
  opts.distinct = DistinctConfig::Hll(14);
  std::uint64_t estimate = 0;
  for (auto _ : state) {
    estimate = count_distinct_final_boards(g, p, opts);
    benchmark::DoNotOptimize(estimate);
  }
  state.counters["distinct_estimate"] =
      benchmark::Counter(static_cast<double>(estimate));
}
BENCHMARK(BM_DistinctBoardsTwoCliquesHll)->Unit(benchmark::kMillisecond);

// --- Accumulator layer in isolation: exact vs hll insert/merge throughput
// and the peak-memory proxy (what the ROADMAP's ~10^9-distinct wall is
// about: 16 bytes per distinct key vs 2^p bytes flat).

constexpr std::int64_t kExactKind = 0;
constexpr std::int64_t kHllKind = 1;

DistinctConfig bench_config(std::int64_t kind) {
  return kind == kExactKind ? DistinctConfig::Exact()
                            : DistinctConfig::Hll(14);
}

Hash128 bench_key(std::uint64_t i) {
  const std::uint64_t lo = mix64(i + 1);
  return Hash128{lo, mix64(lo + 0x9e3779b97f4a7c15ULL)};
}

void BM_DistinctInsert(benchmark::State& state) {
  const DistinctConfig config = bench_config(state.range(0));
  const auto keys = static_cast<std::uint64_t>(state.range(1));
  std::uint64_t inserted = 0;
  std::uint64_t peak_bytes = 0;
  for (auto _ : state) {
    const auto acc = make_distinct_accumulator(config);
    for (std::uint64_t i = 0; i < keys; ++i) acc->insert(bench_key(i));
    const std::uint64_t distinct = acc->estimate();
    benchmark::DoNotOptimize(distinct);
    inserted += keys;
    peak_bytes = config.kind == DistinctKind::kExact
                     ? distinct * sizeof(Hash128)
                     : (std::uint64_t{1} << config.hll_precision);
  }
  state.counters["peak_bytes"] =
      benchmark::Counter(static_cast<double>(peak_bytes));
  state.counters["keys_per_s"] = benchmark::Counter(
      static_cast<double>(inserted), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(inserted));
}
BENCHMARK(BM_DistinctInsert)
    ->ArgsProduct({{kExactKind, kHllKind}, {1 << 16, 1 << 20}})
    ->Unit(benchmark::kMillisecond);

void BM_DistinctMerge(benchmark::State& state) {
  // 16 per-task accumulators of 64k distinct keys each (the explorer's
  // per-subtree shape), folded left like the sweep's final merge.
  const DistinctConfig config = bench_config(state.range(0));
  constexpr std::size_t kParts = 16;
  constexpr std::uint64_t kKeysPerPart = 1 << 16;
  std::uint64_t merged_keys = 0;
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::unique_ptr<DistinctAccumulator>> parts;
    for (std::size_t k = 0; k < kParts; ++k) {
      parts.push_back(make_distinct_accumulator(config));
      for (std::uint64_t i = 0; i < kKeysPerPart; ++i) {
        parts[k]->insert(bench_key(k * kKeysPerPart + i));
      }
    }
    state.ResumeTiming();
    std::unique_ptr<DistinctAccumulator> total = std::move(parts.front());
    for (std::size_t k = 1; k < kParts; ++k) {
      total->merge(std::move(*parts[k]));
    }
    const std::uint64_t distinct = total->estimate();
    benchmark::DoNotOptimize(distinct);
    merged_keys += kParts * kKeysPerPart;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(merged_keys));
}
BENCHMARK(BM_DistinctMerge)
    ->Arg(kExactKind)
    ->Arg(kHllKind)
    ->Unit(benchmark::kMillisecond);

void BM_FrameRoundTrip(benchmark::State& state) {
  // One spec-sized payload per iteration, fed to the decoder in 512-byte
  // chunks the way a pipe delivers it. The fleet pays this once per
  // dispatched shard, so the bar is "noise next to a sweep", not "fast".
  const std::string payload(static_cast<std::size_t>(state.range(0)), 's');
  const fleet::Frame frame{fleet::FrameType::kSpec, payload};
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const std::string wire = encode_frame(frame);
    fleet::FrameDecoder decoder;
    for (std::size_t off = 0; off < wire.size(); off += 512) {
      decoder.feed(wire.data() + off, std::min<std::size_t>(512, wire.size() - off));
    }
    const std::optional<fleet::Frame> decoded = decoder.next();
    benchmark::DoNotOptimize(decoded);
    bytes += wire.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FrameRoundTrip)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace
}  // namespace wb

BENCHMARK_MAIN();
