// Theorem 7 / Corollaries 3-4 — EOB-BFS in ASYNC[log n]:
//  - exhaustive validation summary and battery scaling;
//  - the layer-wave structure (writes per layer certificate) that the
//    activation conditions enforce;
//  - the Corollary 4 boundary, measured: which non-bipartite inputs deadlock
//    the bipartite protocol and which happen to finish (pure odd cycles do —
//    the intra-layer edge sits on the last layer, so no certificate ever
//    needs it).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/graph/algorithms.h"
#include "src/graph/enumerate.h"
#include "src/graph/generators.h"
#include "src/protocols/eob_bfs.h"
#include "src/support/table.h"
#include "src/wb/engine.h"
#include "src/wb/exhaustive.h"

namespace wb {
namespace {

void exhaustive_summary() {
  bench::subsection("Thm 7 exhaustive validation (n = 6)");
  const EobBfsProtocol p;
  std::uint64_t graphs = 0, execs = 0, failures = 0;
  for_each_even_odd_bipartite_graph(6, [&](const Graph& g) {
    ++graphs;
    const BfsForest ref = bfs_forest(g);
    for_each_execution(g, p, [&](const ExecutionResult& r) {
      ++execs;
      if (!r.ok()) {
        ++failures;
        return true;
      }
      const BfsProtocolOutput out = p.output(r.board, 6);
      if (!out.valid || out.layer != ref.layer || out.roots != ref.roots) {
        ++failures;
      }
      return true;
    });
  });
  std::printf(
      "all even-odd-bipartite graphs on 6 nodes, all schedules: %llu graphs, "
      "%llu executions, %llu failures\n",
      static_cast<unsigned long long>(graphs),
      static_cast<unsigned long long>(execs),
      static_cast<unsigned long long>(failures));
}

void scaling_table() {
  bench::subsection("scaling under the adversary battery");
  TextTable t({"n", "adversary", "rounds", "bits/node", "layers", "ok", "ms"});
  for (std::size_t n : {50u, 150u, 400u}) {
    const Graph g = connected_even_odd_bipartite(n, 1, 6, n);
    const EobBfsProtocol p;
    const BfsForest ref = bfs_forest(g);
    int max_layer = 0;
    for (int l : ref.layer) max_layer = std::max(max_layer, l);
    for (auto& adv : standard_adversaries(g, n)) {
      bench::WallTimer timer;
      const ExecutionResult r = run_protocol(g, p, *adv);
      const double ms = timer.ms();
      const bool ok = r.ok() && p.output(r.board, n).layer == ref.layer;
      t.add_row({std::to_string(n), adv->name(),
                 std::to_string(r.stats.rounds),
                 std::to_string(r.stats.max_message_bits),
                 std::to_string(max_layer + 1), ok ? "yes" : "NO",
                 fmt_double(ms, 1)});
    }
  }
  std::printf("%s", t.render().c_str());
}

void corollary4_boundary() {
  bench::subsection("Cor 4 boundary — bipartite mode on non-bipartite inputs");
  const EobBfsProtocol p(EobMode::kBipartiteNoCheck);
  TextTable t({"input", "n", "executions", "deadlocks", "successes"});

  auto probe = [&](const std::string& name, const Graph& g) {
    std::uint64_t execs = 0, deadlocks = 0;
    ExhaustiveOptions opts;
    opts.max_executions = 500'000;
    for_each_execution(
        g, p,
        [&](const ExecutionResult& r) {
          ++execs;
          if (r.status == RunStatus::kDeadlock) ++deadlocks;
          return true;
        },
        opts);
    t.add_row({name, std::to_string(g.node_count()), std::to_string(execs),
               std::to_string(deadlocks), std::to_string(execs - deadlocks)});
  };

  probe("C3 (pure odd cycle)", cycle_graph(3));
  probe("C5 (pure odd cycle)", cycle_graph(5));
  probe("C7 (pure odd cycle)", cycle_graph(7));
  GraphBuilder tail(5);
  tail.add_edge(1, 2);
  tail.add_edge(1, 3);
  tail.add_edge(2, 3);
  tail.add_edge(3, 4);
  tail.add_edge(4, 5);
  probe("triangle + 2-tail", tail.build());
  GraphBuilder iso(4);
  iso.add_edge(1, 2);
  iso.add_edge(1, 3);
  iso.add_edge(2, 3);
  probe("triangle + isolated", iso.build());
  GraphBuilder c5t(7);
  c5t.add_edge(1, 2);
  c5t.add_edge(2, 3);
  c5t.add_edge(3, 4);
  c5t.add_edge(4, 5);
  c5t.add_edge(1, 5);
  c5t.add_edge(3, 6);
  c5t.add_edge(6, 7);
  probe("C5 + 2-tail", c5t.build());
  std::printf("%s", t.render().c_str());
  std::printf(
      "paper: \"running this protocol can result in a deadlock\" on\n"
      "non-bipartite inputs. Measured refinement: the deadlock needs nodes\n"
      "two layers past an intra-layer edge (or a later component); bare odd\n"
      "cycles terminate with correct layers because the odd edge lands on\n"
      "the final layer. Recorded in EXPERIMENTS.md.\n");
}

void BM_EobBfsRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Graph g = connected_even_odd_bipartite(n, 1, 6, 13);
  const EobBfsProtocol p;
  for (auto _ : state) {
    RandomAdversary adv(3);
    benchmark::DoNotOptimize(run_protocol(g, p, adv));
  }
}
BENCHMARK(BM_EobBfsRun)->RangeMultiplier(2)->Range(32, 512);

}  // namespace
}  // namespace wb

int main(int argc, char** argv) {
  wb::bench::section("EOB-BFS — Thm 7 (ASYNC yes), Cor 4 boundary");
  wb::exhaustive_summary();
  wb::scaling_table();
  wb::corollary4_boundary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
